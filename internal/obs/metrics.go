package obs

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/sim"
)

// Registry collects metrics for one simulation run. Gauges are read
// functions sampled into timeseries on a virtual-time cadence;
// counters are gauges over an owned accumulator; histograms aggregate
// observations without a time axis.
//
// Sampling rides the engine's probe hook rather than self-scheduled
// tick events: a tick event would enter the calendar queue, perturb
// Engine.NextEventTime (which the fabric's auto-fidelity proof reads),
// stretch the apparent makespan past the last model event, and need
// its own termination logic. The probe fires as the clock advances
// through events that exist anyway, so sampling can never change what
// the simulation computes — and since discrete-event state is
// piecewise constant between events, sampling at event times loses
// nothing. Samples are stamped with the actual event time, so the
// series cadence is "at least Every apart", not exactly periodic.
type Registry struct {
	name   string
	eng    *sim.Engine
	every  sim.Time
	next   sim.Time
	times  []sim.Time
	series []*Series
	hists  []*Histogram
	closed bool
}

// Series is one sampled timeseries. All series of a registry share
// the registry's sample times.
type Series struct {
	Name string
	Unit string
	read func() float64
	vals []float64
}

// Values returns the sampled values (aligned with Registry.Times).
func (s *Series) Values() []float64 { return s.vals }

// Counter is a monotonically accumulating metric registered as a
// gauge over its own value. Nil-inert like everything else here.
type Counter struct{ v float64 }

// Add increments the counter.
func (c *Counter) Add(d float64) {
	if c != nil {
		c.v += d
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the accumulated total.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Histogram aggregates observations into buckets with finite upper
// bounds plus one overflow bucket. The overflow bucket is stored
// separately rather than as a +Inf bound because the JSON sinks
// cannot represent infinities.
type Histogram struct {
	Name   string
	Unit   string
	bounds []float64
	counts []uint64
	n      uint64
	sum    float64
	min    float64
	max    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min and Max return the observed extremes (0 when empty).
func (h *Histogram) Min() float64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Bounds returns the finite bucket upper bounds.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// Counts returns the bucket counts; the final entry is the overflow
// bucket (observations above the last bound).
func (h *Histogram) Counts() []uint64 {
	if h == nil {
		return nil
	}
	return h.counts
}

// NewRegistry returns a registry sampling the engine every `every` of
// virtual time; every <= 0 disables periodic sampling (Close still
// takes one final sample, so gauges always yield at least their
// end-of-run value). Call Close after the run; the registry installs
// itself as the engine's probe and Close removes it.
func NewRegistry(name string, eng *sim.Engine, every sim.Time) *Registry {
	r := &Registry{name: name, eng: eng, every: every}
	if every > 0 {
		r.next = every
		eng.SetProbe(r.onAdvance)
	}
	return r
}

// Name returns the registry's run label.
func (r *Registry) Name() string {
	if r == nil {
		return ""
	}
	return r.name
}

// Every returns the sampling cadence (0 when periodic sampling off).
func (r *Registry) Every() sim.Time {
	if r == nil {
		return 0
	}
	return r.every
}

// Gauge registers a sampled read function. Series registered after
// sampling started are backfilled with zeros so every series stays
// aligned with the shared time axis (zeros, not NaN: the JSON sinks
// reject NaN).
func (r *Registry) Gauge(name, unit string, read func() float64) {
	if r == nil {
		return
	}
	s := &Series{Name: name, Unit: unit, read: read}
	if n := len(r.times); n > 0 {
		s.vals = make([]float64, n)
	}
	r.series = append(r.series, s)
}

// Counter registers an accumulator sampled like a gauge and returns
// it. A nil registry returns a nil (inert) counter.
func (r *Registry) Counter(name, unit string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.Gauge(name, unit, c.Value)
	return c
}

// Histogram registers a histogram with the given ascending finite
// bucket bounds and returns it. A nil registry returns nil.
func (r *Registry) Histogram(name, unit string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
	}
	h := &Histogram{Name: name, Unit: unit,
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1)}
	r.hists = append(r.hists, h)
	return h
}

// onAdvance is the engine probe: take a sample whenever the clock has
// crossed the next sampling deadline.
func (r *Registry) onAdvance(now sim.Time) {
	if r.closed || now < r.next {
		return
	}
	r.sample(now)
	// Advance past now without looping sample-by-sample through idle
	// gaps (a job arrival after 1000s of quiet would otherwise replay
	// every missed tick).
	steps := (now-r.next)/r.every + 1
	r.next += steps * r.every
}

func (r *Registry) sample(now sim.Time) {
	r.times = append(r.times, now)
	for _, s := range r.series {
		s.vals = append(s.vals, finite(s.read()))
	}
}

// finite clamps NaN/Inf reads to zero; the JSON sinks reject both.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// Close takes a final sample at the engine's current time and detaches
// the probe. The probe samples before each event dispatches, so when
// the run's last event crossed a sampling deadline the buffered tail
// sample predates its effects; Close re-reads every series at that
// timestamp so the final row always reflects the end-of-run state.
// Safe to call more than once; nil-safe.
func (r *Registry) Close() {
	if r == nil || r.closed {
		return
	}
	now := r.eng.Now()
	if n := len(r.times); n > 0 && r.times[n-1] == now {
		for _, s := range r.series {
			s.vals[n-1] = finite(s.read())
		}
	} else {
		r.sample(now)
	}
	r.closed = true
	if r.every > 0 {
		r.eng.SetProbe(nil)
	}
}

// Times returns the shared sample times.
func (r *Registry) Times() []sim.Time {
	if r == nil {
		return nil
	}
	return r.times
}

// Series returns the registered timeseries in registration order.
func (r *Registry) Series() []*Series {
	if r == nil {
		return nil
	}
	return r.series
}

// Histograms returns the registered histograms in registration order.
func (r *Registry) Histograms() []*Histogram {
	if r == nil {
		return nil
	}
	return r.hists
}

// WriteCSV writes the registry's timeseries in wide form: one t_s
// column followed by one column per series.
func (r *Registry) WriteCSV(w io.Writer) error {
	if r == nil {
		return nil
	}
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(r.series)+1)
	header = append(header, "t_s")
	for _, s := range r.series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i, t := range r.times {
		row[0] = formatFloat(t.Seconds())
		for j, s := range r.series {
			row[j+1] = formatFloat(s.vals[i])
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// formatFloat renders a metric value compactly and deterministically.
func formatFloat(v float64) string { return fmt.Sprintf("%g", v) }
