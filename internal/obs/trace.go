// Package obs is the virtual-time observability layer of the
// simulated machine: trace spans stamped with sim.Time, metrics
// timeseries sampled on the simulation clock, and the plumbing that
// surfaces both through the deep SDK and the command-line tools.
//
// Everything in the package follows the nil-inert convention the
// energy layer established: a nil *Trace, *Scope, *Registry or
// *Observer accepts every call and does nothing, so instrumented
// subsystems carry one pointer field and zero conditional wiring.
// With observability off the instrumentation reduces to a nil check
// per emission site, keeping default runs byte-identical and inside
// the benchmark band.
package obs

import (
	"sort"
	"sync"

	"repro/internal/sim"
)

// Thread-id lanes: instrumented subsystems offset their component ids
// into disjoint tid ranges so a single trace process keeps jobs,
// faults, nodes, links and power transitions on separate rows.
const (
	LaneJobs   = 0
	LaneFaults = 1 << 20
	LaneNodes  = 2 << 20
	LaneLinks  = 3 << 20
	LanePower  = 4 << 20
	// LaneDomains holds one row per parallel-kernel domain: spans named
	// "blocked" cover the synchronization windows a domain sat out.
	LaneDomains = 5 << 20
)

// KV is one key/value argument attached to a trace event.
type KV struct {
	K string
	V any
}

// Event is one recorded trace record in virtual time. Ph follows the
// Chrome trace-event phases: 'X' complete span, 'i' instant.
type Event struct {
	Name string
	Cat  string
	Ph   byte
	Ts   sim.Time
	Dur  sim.Time
	Tid  int
	Args []KV
}

// DefaultEventLimit caps the events one Scope buffers. A traced E15
// run dispatches hundreds of millions of events; the cap turns an
// accidental full-fidelity trace into a truncated timeline plus a
// Dropped count instead of an OOM kill.
const DefaultEventLimit = 4 << 20

// Trace collects events from any number of named processes (scopes).
// Each scope buffers its own events, so parallel runs never interleave
// and the exported trace is a deterministic function of the per-run
// event streams regardless of goroutine scheduling.
type Trace struct {
	mu     sync.Mutex
	limit  int
	scopes []*Scope
}

// NewTrace returns an empty trace with the default per-scope cap.
func NewTrace() *Trace { return &Trace{limit: DefaultEventLimit} }

// SetEventLimit changes the per-scope event cap for scopes created
// afterwards; n <= 0 removes the cap.
func (t *Trace) SetEventLimit(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.limit = n
	t.mu.Unlock()
}

// Process returns the scope named name, creating it on first use.
// Scope names become Chrome process names; reusing a name returns the
// same scope. Nil-safe: a nil trace returns a nil (inert) scope.
func (t *Trace) Process(name string) *Scope {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.scopes {
		if s.name == name {
			return s
		}
	}
	s := &Scope{name: name, limit: t.limit}
	t.scopes = append(t.scopes, s)
	return s
}

// Len returns the total number of buffered events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	scopes := append([]*Scope(nil), t.scopes...)
	t.mu.Unlock()
	n := 0
	for _, s := range scopes {
		s.mu.Lock()
		n += len(s.events)
		s.mu.Unlock()
	}
	return n
}

// Dropped returns how many events were discarded across all scopes
// because a scope hit its event cap.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	scopes := append([]*Scope(nil), t.scopes...)
	t.mu.Unlock()
	var n uint64
	for _, s := range scopes {
		s.mu.Lock()
		n += s.dropped
		s.mu.Unlock()
	}
	return n
}

// sorted returns the scopes ordered by name. Process ids are assigned
// from this order at export time, so the trace layout depends only on
// the set of scope names, not on the creation interleaving of a
// parallel runner.
func (t *Trace) sorted() []*Scope {
	t.mu.Lock()
	scopes := append([]*Scope(nil), t.scopes...)
	t.mu.Unlock()
	sort.Slice(scopes, func(i, j int) bool { return scopes[i].name < scopes[j].name })
	return scopes
}

// Scope is one traced process: a named stream of events sharing a pid
// in the exported trace. The zero of *Scope (nil) is inert, so
// instrumented subsystems emit unconditionally through it.
type Scope struct {
	name    string
	limit   int
	mu      sync.Mutex
	events  []Event
	threads map[int]string
	dropped uint64
}

// Enabled reports whether the scope records anything. Emission sites
// with non-trivial argument construction gate on it; a bare Span or
// Instant call on a nil scope is also safe.
func (s *Scope) Enabled() bool { return s != nil }

// Name returns the scope's process name.
func (s *Scope) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

func (s *Scope) add(ev Event) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.limit > 0 && len(s.events) >= s.limit {
		s.dropped++
	} else {
		s.events = append(s.events, ev)
	}
	s.mu.Unlock()
}

// Span records a complete event covering [start, end] on thread tid.
func (s *Scope) Span(tid int, cat, name string, start, end sim.Time, args ...KV) {
	if s == nil {
		return
	}
	if end < start {
		end = start
	}
	s.add(Event{Name: name, Cat: cat, Ph: 'X', Ts: start, Dur: end - start, Tid: tid, Args: args})
}

// Instant records a zero-duration event at time at on thread tid.
func (s *Scope) Instant(tid int, cat, name string, at sim.Time, args ...KV) {
	if s == nil {
		return
	}
	s.add(Event{Name: name, Cat: cat, Ph: 'i', Ts: at, Tid: tid, Args: args})
}

// Thread names a tid row (Chrome thread_name metadata).
func (s *Scope) Thread(tid int, name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.threads == nil {
		s.threads = make(map[int]string)
	}
	s.threads[tid] = name
	s.mu.Unlock()
}

// snapshot returns the scope's events stably sorted by timestamp and
// its thread names. Stable sort keeps same-timestamp events in
// emission order, which is deterministic per run.
func (s *Scope) snapshot() ([]Event, map[int]string) {
	s.mu.Lock()
	events := append([]Event(nil), s.events...)
	threads := make(map[int]string, len(s.threads))
	for k, v := range s.threads {
		threads[k] = v
	}
	s.mu.Unlock()
	sort.SliceStable(events, func(i, j int) bool { return events[i].Ts < events[j].Ts })
	return events, threads
}
