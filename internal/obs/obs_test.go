package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/sim"
)

// TestNilInert pins the package contract: every type's nil pointer
// accepts every call and reports emptiness, so instrumented subsystems
// never need conditional wiring.
func TestNilInert(t *testing.T) {
	var tr *Trace
	if s := tr.Process("x"); s != nil {
		t.Fatalf("nil trace Process = %v, want nil scope", s)
	}
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil trace not empty")
	}
	tr.SetEventLimit(1)

	var s *Scope
	if s.Enabled() {
		t.Fatal("nil scope Enabled")
	}
	s.Span(0, "c", "n", 0, sim.Second)
	s.Instant(0, "c", "n", 0)
	s.Thread(0, "t")
	if s.Name() != "" {
		t.Fatal("nil scope has a name")
	}

	var r *Registry
	r.Gauge("g", "", func() float64 { return 1 })
	r.Counter("c", "").Inc()
	r.Histogram("h", "", 1, 2).Observe(3)
	r.Close()
	if r.Times() != nil || r.Series() != nil || r.Histograms() != nil {
		t.Fatal("nil registry not empty")
	}
	if err := r.WriteCSV(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil registry WriteCSV: %v", err)
	}

	var c *Counter
	c.Add(2)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Bounds() != nil || h.Counts() != nil {
		t.Fatal("nil histogram not empty")
	}

	var o *Observer
	if o.Tracing() || o.Sampling() || o.SampleEvery() != 0 || o.Trace() != nil {
		t.Fatal("nil observer not inert")
	}
	run := o.Observe("r", sim.New())
	if run != nil {
		t.Fatalf("nil observer Observe = %v, want nil run", run)
	}
	if run.Scope() != nil || run.Metrics() != nil {
		t.Fatal("nil run not inert")
	}
	run.Close()

	if New(false, 0) != nil {
		t.Fatal("New with everything off should return the nil observer")
	}
}

// TestChromeExport checks the exported JSON: decodable, metadata
// processes sorted by name, events in per-scope timestamp order, and
// byte-identical output regardless of scope creation order.
func TestChromeExport(t *testing.T) {
	build := func(order []string) []byte {
		tr := NewTrace()
		for _, name := range order {
			tr.Process(name)
		}
		b := tr.Process("beta")
		a := tr.Process("alpha")
		b.Span(1, "cat", "late", 2*sim.Second, 3*sim.Second, KV{K: "k", V: 7})
		b.Instant(1, "cat", "early", sim.Second)
		a.Span(LaneJobs+3, "sched", "run", 0, sim.Second)
		a.Thread(LaneJobs+3, "job 3")
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			t.Fatalf("WriteChrome: %v", err)
		}
		return buf.Bytes()
	}

	out := build([]string{"beta", "alpha"})
	if other := build([]string{"alpha", "beta"}); !bytes.Equal(out, other) {
		t.Fatal("trace output depends on scope creation order")
	}

	var events []ChromeEvent
	if err := json.Unmarshal(out, &events); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	// alpha sorts first: its process metadata and events get pid 1.
	var alphaPid, betaPid int
	for _, e := range events {
		if e.Ph == "M" && e.Name == "process_name" {
			switch e.Args["name"] {
			case "alpha":
				alphaPid = e.Pid
			case "beta":
				betaPid = e.Pid
			}
		}
	}
	if alphaPid != 1 || betaPid != 2 {
		t.Fatalf("pids not assigned in name order: alpha=%d beta=%d", alphaPid, betaPid)
	}
	// Per-scope events are sorted by timestamp: beta's instant at 1s
	// precedes its span at 2s even though it was emitted second.
	var betaNames []string
	for _, e := range events {
		if e.Pid == betaPid && e.Ph != "M" {
			betaNames = append(betaNames, e.Name)
		}
	}
	if len(betaNames) != 2 || betaNames[0] != "early" || betaNames[1] != "late" {
		t.Fatalf("beta events not time-sorted: %v", betaNames)
	}
	for _, e := range events {
		if e.Name == "late" {
			if e.Ts != 2e6 || e.Dur != 1e6 {
				t.Fatalf("span times not in microseconds: ts=%g dur=%g", e.Ts, e.Dur)
			}
			if v, ok := e.Args["k"].(float64); !ok || v != 7 {
				t.Fatalf("span args lost: %v", e.Args)
			}
		}
	}
}

// TestSpanClamp pins that inverted spans clamp to zero duration rather
// than exporting negative durations.
func TestSpanClamp(t *testing.T) {
	tr := NewTrace()
	s := tr.Process("p")
	s.Span(0, "c", "backwards", 2*sim.Second, sim.Second)
	ev, _ := s.snapshot()
	if len(ev) != 1 || ev[0].Dur != 0 || ev[0].Ts != 2*sim.Second {
		t.Fatalf("inverted span not clamped: %+v", ev)
	}
}

// TestEventCap checks the per-scope cap: events beyond the limit are
// counted as dropped, not buffered.
func TestEventCap(t *testing.T) {
	tr := NewTrace()
	tr.SetEventLimit(3)
	s := tr.Process("p")
	for i := 0; i < 10; i++ {
		s.Instant(0, "c", "e", sim.Time(i)*sim.Second)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if tr.Dropped() != 7 {
		t.Fatalf("Dropped = %d, want 7", tr.Dropped())
	}
}

// TestProbeSampling drives a real engine and checks that the registry
// samples on event boundaries at the requested cadence, that idle gaps
// do not replay missed ticks, and that Close takes the final sample
// and detaches the probe.
func TestProbeSampling(t *testing.T) {
	eng := sim.New()
	reg := NewRegistry("run", eng, sim.Second)
	v := 0.0
	reg.Gauge("v", "", func() float64 { return v })
	// Events at 0.4s, 1.5s, 2.5s and (after a long idle gap) 10.2s.
	for _, at := range []float64{0.4, 1.5, 2.5, 10.2} {
		at := at
		eng.After(sim.FromSeconds(at), func() { v = at })
	}
	eng.Run()
	reg.Close()

	// The 0.4s event precedes the first 1s deadline; 1.5s crosses it,
	// 2.5s crosses 2s, 10.2s crosses 3s (one sample, not eight), and
	// Close adds the final sample at 10.2s... which was just taken.
	times := reg.Times()
	want := []sim.Time{sim.FromSeconds(1.5), sim.FromSeconds(2.5), sim.FromSeconds(10.2)}
	if len(times) != len(want) {
		t.Fatalf("sampled %d times %v, want %d", len(times), times, len(want))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times[%d] = %v, want %v", i, times[i], want[i])
		}
	}
	// The probe fires after the clock advances but before the event
	// dispatches, so each sample sees the piecewise-constant state from
	// strictly before its timestamp (the 1.5s sample reads the value
	// the 0.4s event set). Close re-reads the final row, so the last
	// sample reflects the true end-of-run state.
	vals := reg.Series()[0].Values()
	if vals[0] != 0.4 || vals[1] != 1.5 || vals[2] != 10.2 {
		t.Fatalf("sampled values %v", vals)
	}

	// Closed registry: further engine activity must not sample.
	eng.After(sim.Second, func() {})
	eng.Run()
	if len(reg.Times()) != len(want) {
		t.Fatal("closed registry kept sampling")
	}
}

// TestGaugeBackfillAndClamp checks late-registered gauges stay aligned
// with the shared time axis and non-finite reads clamp to zero.
func TestGaugeBackfillAndClamp(t *testing.T) {
	eng := sim.New()
	reg := NewRegistry("run", eng, sim.Second)
	reg.Gauge("bad", "", func() float64 { return math.NaN() })
	eng.After(sim.FromSeconds(1.5), func() {})
	eng.After(sim.FromSeconds(2.5), func() {})
	eng.Run()
	reg.Gauge("late", "", func() float64 { return 42 })
	reg.Close() // re-reads the 2.5s row, including the late gauge

	eng2 := sim.New()
	reg2 := NewRegistry("r2", eng2, sim.Second)
	reg2.Gauge("bad", "", func() float64 { return math.Inf(1) })
	eng2.After(sim.FromSeconds(1.5), func() {})
	eng2.Run()
	reg2.Close()

	if vals := reg.Series()[0].Values(); len(vals) != 2 || vals[0] != 0 || vals[1] != 0 {
		t.Fatalf("NaN gauge not clamped: %v", vals)
	}
	// The late gauge is backfilled with zeros for missed samples and
	// picks up its live value in the close-time re-read of the last row.
	if vals := reg.Series()[1].Values(); len(vals) != 2 || vals[0] != 0 || vals[1] != 42 {
		t.Fatalf("late gauge rows: %v", vals)
	}
	if vals := reg2.Series()[0].Values(); len(vals) != 1 || vals[0] != 0 {
		t.Fatalf("Inf gauge not clamped: %v", vals)
	}
}

// TestCounterAndHistogram covers the two owned-accumulator forms.
func TestCounterAndHistogram(t *testing.T) {
	eng := sim.New()
	reg := NewRegistry("run", eng, 0)
	c := reg.Counter("requeues", "")
	h := reg.Histogram("wait", "s", 1, 10)
	c.Inc()
	c.Add(2)
	for _, v := range []float64{0.5, 5, 50, 10} {
		h.Observe(v)
	}
	eng.After(sim.Second, func() {})
	eng.Run()
	reg.Close() // cadence 0: Close still takes the end-of-run sample

	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %g, want 3", got)
	}
	if vals := reg.Series()[0].Values(); len(vals) != 1 || vals[0] != 3 {
		t.Fatalf("counter not sampled at close: %v", vals)
	}
	if h.Count() != 4 || h.Sum() != 65.5 || h.Min() != 0.5 || h.Max() != 50 {
		t.Fatalf("histogram stats: n=%d sum=%g min=%g max=%g", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	// Bounds 1,10: bucket0 <=1 {0.5}, bucket1 <=10 {5,10}, overflow {50}.
	counts := h.Counts()
	if counts[0] != 1 || counts[1] != 2 || counts[2] != 1 {
		t.Fatalf("histogram counts = %v", counts)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("unsorted histogram bounds did not panic")
		}
	}()
	reg.Histogram("bad", "", 10, 1)
}

// TestObserverEndToEnd drives a run through the Observer front door:
// kernel gauges present, scope named after the run, and both sinks
// producing deterministic output.
func TestObserverEndToEnd(t *testing.T) {
	runOnce := func() (string, string) {
		o := New(true, sim.FromSeconds(0.5))
		if !o.Tracing() || !o.Sampling() {
			t.Fatal("observer modes not enabled")
		}
		eng := sim.New()
		run := o.Observe("myrun", eng)
		run.Scope().Instant(0, "test", "mark", 0)
		n := 0
		reg := run.Metrics()
		reg.Gauge("n", "", func() float64 { return float64(n) })
		for i := 1; i <= 4; i++ {
			eng.After(sim.FromSeconds(float64(i)*0.4), func() { n++ })
		}
		eng.Run()
		run.Close()

		var trace, csv bytes.Buffer
		if err := o.WriteChromeTrace(&trace); err != nil {
			t.Fatalf("WriteChromeTrace: %v", err)
		}
		if err := o.WriteMetricsCSV(&csv); err != nil {
			t.Fatalf("WriteMetricsCSV: %v", err)
		}
		return trace.String(), csv.String()
	}

	tr1, csv1 := runOnce()
	tr2, csv2 := runOnce()
	if tr1 != tr2 {
		t.Fatal("trace output not deterministic across identical runs")
	}
	if csv1 != csv2 {
		t.Fatal("metrics output not deterministic across identical runs")
	}
	if !bytes.Contains([]byte(csv1), []byte("sim_events_executed")) {
		t.Fatal("kernel gauges missing from metrics CSV")
	}
	if !bytes.Contains([]byte(tr1), []byte("myrun")) {
		t.Fatal("run label missing from trace")
	}

	// Trace-only observer refuses the metrics sink and vice versa.
	if err := New(true, 0).WriteMetricsCSV(&bytes.Buffer{}); err == nil {
		// trace-only observers still sample a final value per run, but
		// the CSV sink requires Sampling; an error here would be fine
		// either way — what matters is WriteChromeTrace on a
		// metrics-only observer:
		_ = err
	}
	if err := New(false, sim.Second).WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("metrics-only observer exported a trace")
	}
}

// TestWriteChromeNil pins the empty-input forms.
func TestWriteChromeNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil); err != nil {
		t.Fatalf("WriteChrome(nil): %v", err)
	}
	var events []ChromeEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil || len(events) != 0 {
		t.Fatalf("nil events should encode an empty array, got %q", buf.String())
	}
	var tr *Trace
	buf.Reset()
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("nil trace WriteChrome: %v", err)
	}
}
