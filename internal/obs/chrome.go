package obs

import (
	"encoding/json"
	"io"
	"sort"

	"repro/internal/sim"
)

// ChromeEvent is one record of the Chrome trace-event format (the
// JSON-array flavour chrome://tracing and Perfetto load directly).
// Timestamps and durations are microseconds. This is the one encoder
// the repository uses: obs traces and ompss.Tracer both export
// through it, so real-runtime and simulated timelines view
// identically.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome encodes events as a single JSON array. A nil or empty
// slice writes "[]": an empty trace is still a valid trace.
func WriteChrome(w io.Writer, events []ChromeEvent) error {
	if events == nil {
		events = []ChromeEvent{}
	}
	return json.NewEncoder(w).Encode(events)
}

// micros converts virtual time to trace-event microseconds.
func micros(t sim.Time) float64 { return float64(t) / float64(sim.Microsecond) }

// argsMap converts KV pairs into the trace-event args object.
func argsMap(args []KV) map[string]any {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]any, len(args))
	for _, a := range args {
		m[a.K] = a.V
	}
	return m
}

// ChromeEvents flattens the trace into encoder records: scopes sorted
// by name get pids 1..n, each preceded by process_name / thread_name
// metadata, with the scope's events in timestamp order. The result is
// a pure function of the per-scope event streams — two runs that
// emitted the same events export byte-identical traces.
func (t *Trace) ChromeEvents() []ChromeEvent {
	if t == nil {
		return nil
	}
	var out []ChromeEvent
	for i, s := range t.sorted() {
		pid := i + 1
		events, threads := s.snapshot()
		out = append(out, ChromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": s.name},
		})
		tids := make([]int, 0, len(threads))
		for tid := range threads {
			tids = append(tids, tid)
		}
		sort.Ints(tids)
		for _, tid := range tids {
			out = append(out, ChromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": threads[tid]},
			})
		}
		for _, ev := range events {
			ce := ChromeEvent{
				Name: ev.Name,
				Cat:  ev.Cat,
				Ph:   string(ev.Ph),
				Ts:   micros(ev.Ts),
				Pid:  pid,
				Tid:  ev.Tid,
				Args: argsMap(ev.Args),
			}
			if ev.Ph == 'X' {
				ce.Dur = micros(ev.Dur)
			}
			out = append(out, ce)
		}
	}
	return out
}

// WriteChrome exports the whole trace as Chrome trace-event JSON.
func (t *Trace) WriteChrome(w io.Writer) error {
	return WriteChrome(w, t.ChromeEvents())
}
