package obs

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/sim"
)

// Observer is the per-invocation observability hub: it owns one Trace
// shared by every run it observes and one metrics Registry per run.
// A nil Observer is fully inert — Observe returns a nil Run whose
// accessors return nil scopes and registries, which the instrumented
// subsystems already tolerate — so "observability off" costs exactly
// the nil checks at the emission sites.
type Observer struct {
	// OnObserve, when non-nil, is called with the run label each time
	// a simulation run opens an observability lane (Observe). Set it
	// before the observer is shared; it may be called from concurrent
	// runs and must be safe for that. The zero Observer with only
	// OnObserve set is a valid "progress-only" hub: no trace, no
	// sampling, just lane-open notifications.
	OnObserve func(name string)

	mu    sync.Mutex
	trace *Trace
	every sim.Time
	regs  []*Registry
}

// New returns an observer with tracing on/off and metrics sampled
// every sampleEvery of virtual time (0 disables periodic sampling).
// When both are off it returns nil, the inert observer.
func New(tracing bool, sampleEvery sim.Time) *Observer {
	if !tracing && sampleEvery <= 0 {
		return nil
	}
	o := &Observer{every: sampleEvery}
	if tracing {
		o.trace = NewTrace()
	}
	return o
}

// Tracing reports whether the observer records trace events.
func (o *Observer) Tracing() bool { return o != nil && o.trace != nil }

// Sampling reports whether the observer samples metrics periodically.
func (o *Observer) Sampling() bool { return o != nil && o.every > 0 }

// SampleEvery returns the metrics cadence (0 when sampling is off).
func (o *Observer) SampleEvery() sim.Time {
	if o == nil {
		return 0
	}
	return o.every
}

// Trace returns the shared trace (nil when tracing is off).
func (o *Observer) Trace() *Trace {
	if o == nil {
		return nil
	}
	return o.trace
}

// Run bundles what one observed simulation run emits into: a trace
// scope and a metrics registry. The nil Run is inert.
type Run struct {
	scope *Scope
	reg   *Registry
}

// Scope returns the run's trace scope (nil when tracing is off).
func (r *Run) Scope() *Scope {
	if r == nil {
		return nil
	}
	return r.scope
}

// Metrics returns the run's registry (nil when the observer is nil).
func (r *Run) Metrics() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Close finalises the run's registry (final sample, probe detached).
func (r *Run) Close() {
	if r == nil {
		return
	}
	r.reg.Close()
}

// Observe opens an observability lane for one simulation run: a trace
// scope named name and a registry sampling eng on the observer's
// cadence. The registry always carries the simulation kernel's own
// health gauges (executed/pending events and the event-pool hit rate
// from sim.Stats). Run labels double as Chrome process names and must
// be unique per observer for the exported trace to be deterministic
// under a parallel runner.
func (o *Observer) Observe(name string, eng *sim.Engine) *Run {
	if o == nil {
		return nil
	}
	reg := NewRegistry(name, eng, o.every)
	reg.Gauge("sim_events_executed", "", func() float64 { return float64(eng.Executed()) })
	reg.Gauge("sim_events_pending", "", func() float64 { return float64(eng.Pending()) })
	reg.Gauge("sim_pool_hit_rate", "", func() float64 {
		st := eng.Stats()
		if st.Allocs+st.Reused == 0 {
			return 0
		}
		return float64(st.Reused) / float64(st.Allocs+st.Reused)
	})
	o.mu.Lock()
	o.regs = append(o.regs, reg)
	o.mu.Unlock()
	if o.OnObserve != nil {
		o.OnObserve(name)
	}
	return &Run{scope: o.trace.Process(name), reg: reg}
}

// Registries returns the per-run registries sorted by name, the
// deterministic export order.
func (o *Observer) Registries() []*Registry {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	regs := append([]*Registry(nil), o.regs...)
	o.mu.Unlock()
	sort.Slice(regs, func(i, j int) bool { return regs[i].name < regs[j].name })
	return regs
}

// WriteChromeTrace exports the merged trace of every observed run.
func (o *Observer) WriteChromeTrace(w io.Writer) error {
	if !o.Tracing() {
		return fmt.Errorf("obs: tracing not enabled")
	}
	return o.trace.WriteChrome(w)
}

// WriteMetricsCSV writes every run's timeseries in long form
// (run,metric,unit,t_s,value) so multi-run sweeps land in one flat
// file.
func (o *Observer) WriteMetricsCSV(w io.Writer) error {
	if o == nil {
		return fmt.Errorf("obs: metrics not enabled")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"run", "metric", "unit", "t_s", "value"}); err != nil {
		return err
	}
	for _, reg := range o.Registries() {
		times := reg.Times()
		for _, s := range reg.Series() {
			for i, t := range times {
				err := cw.Write([]string{reg.Name(), s.Name, s.Unit,
					formatFloat(t.Seconds()), formatFloat(s.vals[i])})
				if err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
