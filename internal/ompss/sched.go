package ompss

import "container/heap"

// Scheduler orders the ready queue. Implementations are called with
// the runtime lock held and must not block.
type Scheduler interface {
	Push(*Task)
	Pop() *Task // nil when empty
	Len() int
}

// FIFO runs ready tasks in submission order — the breadth-first
// default of Nanos++.
type FIFO struct {
	q []*Task
}

// NewFIFO returns an empty FIFO scheduler.
func NewFIFO() *FIFO { return &FIFO{} }

// Push implements Scheduler.
func (f *FIFO) Push(t *Task) { f.q = append(f.q, t) }

// Pop implements Scheduler.
func (f *FIFO) Pop() *Task {
	if len(f.q) == 0 {
		return nil
	}
	t := f.q[0]
	copy(f.q, f.q[1:])
	f.q[len(f.q)-1] = nil
	f.q = f.q[:len(f.q)-1]
	return t
}

// Len implements Scheduler.
func (f *FIFO) Len() int { return len(f.q) }

// LIFO runs the most recently readied task first — depth-first, which
// keeps the working set hot for cache-friendly task chains.
type LIFO struct {
	q []*Task
}

// NewLIFO returns an empty LIFO scheduler.
func NewLIFO() *LIFO { return &LIFO{} }

// Push implements Scheduler.
func (l *LIFO) Push(t *Task) { l.q = append(l.q, t) }

// Pop implements Scheduler.
func (l *LIFO) Pop() *Task {
	if len(l.q) == 0 {
		return nil
	}
	t := l.q[len(l.q)-1]
	l.q[len(l.q)-1] = nil
	l.q = l.q[:len(l.q)-1]
	return t
}

// Len implements Scheduler.
func (l *LIFO) Len() int { return len(l.q) }

// Priority runs the highest-priority ready task first, breaking ties
// by submission order. The tiled Cholesky uses it to favour the
// critical-path potrf/trsm tasks.
type Priority struct {
	h prioHeap
}

// NewPriority returns an empty priority scheduler.
func NewPriority() *Priority { return &Priority{} }

// Push implements Scheduler.
func (p *Priority) Push(t *Task) { heap.Push(&p.h, t) }

// Pop implements Scheduler.
func (p *Priority) Pop() *Task {
	if p.h.Len() == 0 {
		return nil
	}
	return heap.Pop(&p.h).(*Task)
}

// Len implements Scheduler.
func (p *Priority) Len() int { return p.h.Len() }

type prioHeap []*Task

func (h prioHeap) Len() int { return len(h) }
func (h prioHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority > h[j].Priority
	}
	return h[i].ID < h[j].ID
}
func (h prioHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *prioHeap) Push(x any)   { *h = append(*h, x.(*Task)) }
func (h *prioHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
