package ompss

import (
	"sync/atomic"
	"testing"
)

func TestTaskWaitAndDone(t *testing.T) {
	rt := New(2)
	defer rt.Shutdown()
	gate := make(chan struct{})
	task := rt.Submit("gated", func() { <-gate }, Deps{})
	if task.Done() {
		t.Fatal("task done before gate opened")
	}
	close(gate)
	task.Wait()
	if !task.Done() {
		t.Fatal("task not done after Wait")
	}
}

func TestTaskwaitOnWaitsForWriter(t *testing.T) {
	rt := New(4)
	defer rt.Shutdown()
	region := new(int)
	var wrote int32
	gate := make(chan struct{})
	rt.Submit("writer", func() {
		<-gate
		atomic.StoreInt32(&wrote, 1)
	}, Deps{Out: []any{region}})
	done := make(chan struct{})
	go func() {
		rt.TaskwaitOn(region)
		if atomic.LoadInt32(&wrote) != 1 {
			t.Error("TaskwaitOn returned before the writer finished")
		}
		close(done)
	}()
	close(gate)
	<-done
}

func TestTaskwaitOnDoesNotDrainOtherRegions(t *testing.T) {
	rt := New(4)
	defer rt.Shutdown()
	fast, slow := new(int), new(int)
	slowGate := make(chan struct{})
	rt.Submit("slow", func() { <-slowGate }, Deps{Out: []any{slow}})
	rt.Submit("fast", func() {}, Deps{Out: []any{fast}})
	// Waiting on the fast region must not require the slow task.
	rt.TaskwaitOn(fast)
	close(slowGate) // only now release the slow task
	rt.Taskwait()
}

func TestTaskwaitOnUnknownRegionReturnsImmediately(t *testing.T) {
	rt := New(1)
	defer rt.Shutdown()
	rt.TaskwaitOn(new(int)) // nothing ever wrote it
}

func TestTaskwaitOnChain(t *testing.T) {
	rt := New(2)
	defer rt.Shutdown()
	region := new(int)
	val := 0
	for i := 0; i < 10; i++ {
		rt.Submit("inc", func() { val++ }, Deps{InOut: []any{region}})
	}
	// The last writer transitively requires the whole chain.
	rt.TaskwaitOn(region)
	if val != 10 {
		t.Fatalf("val = %d after TaskwaitOn", val)
	}
}
