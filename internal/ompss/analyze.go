package ompss

import (
	"container/heap"
	"fmt"

	"repro/internal/sim"
)

// Graph analysis utilities over recorded task sets (WithRecording).
// They power the property tests (acyclicity, serialisability) and the
// virtual-time makespan model behind the Cholesky speedup experiment.

// GraphBuilder records a task submission sequence without executing
// it, reconstructing the dependence DAG with the same semantics as
// Runtime.Submit. Use it to analyse a workload (critical path, work,
// modelled makespan on w workers) independently of real execution —
// the live runtime consumes successor lists as it runs, so analysis
// always happens on a dry-run re-submission.
type GraphBuilder struct {
	lastWriter map[any]int
	readers    map[any][]int
	// Succ[i] lists successor task indices of task i.
	Succ [][]int
	// Pred counts in-degrees.
	Pred []int
	// Costs and Names mirror the submissions.
	Costs []sim.Time
	Names []string
	Prio  []int
}

// NewGraphBuilder returns an empty builder.
func NewGraphBuilder() *GraphBuilder {
	return &GraphBuilder{
		lastWriter: make(map[any]int),
		readers:    make(map[any][]int),
	}
}

// Add registers a task with dependences d and returns its index. The
// dependence semantics are identical to Runtime.Submit.
func (g *GraphBuilder) Add(name string, d Deps) int {
	id := len(g.Succ)
	g.Succ = append(g.Succ, nil)
	g.Pred = append(g.Pred, 0)
	g.Costs = append(g.Costs, d.Cost)
	g.Names = append(g.Names, name)
	g.Prio = append(g.Prio, d.Priority)

	seen := make(map[int]bool)
	addDep := func(pred int) {
		if pred < 0 || pred == id || seen[pred] {
			return
		}
		seen[pred] = true
		g.Succ[pred] = append(g.Succ[pred], id)
		g.Pred[id]++
	}
	last := func(reg any) int {
		if w, ok := g.lastWriter[reg]; ok {
			return w
		}
		return -1
	}
	for _, reg := range d.In {
		addDep(last(reg))
		g.readers[reg] = append(g.readers[reg], id)
	}
	writes := append(append([]any{}, d.Out...), d.InOut...)
	for _, reg := range writes {
		addDep(last(reg))
		for _, rd := range g.readers[reg] {
			addDep(rd)
		}
		g.readers[reg] = nil
		g.lastWriter[reg] = id
		if containsRegion(d.InOut, reg) {
			g.readers[reg] = append(g.readers[reg], id)
		}
	}
	return id
}

// Len returns the number of tasks.
func (g *GraphBuilder) Len() int { return len(g.Succ) }

// CheckAcyclic returns an error if the graph has a cycle (it never
// should: dependences only point backwards in submission order, so this
// is a structural self-check used by the property tests).
func (g *GraphBuilder) CheckAcyclic() error {
	for i, succ := range g.Succ {
		for _, s := range succ {
			if s <= i {
				return fmt.Errorf("ompss: edge %d -> %d violates submission order", i, s)
			}
		}
	}
	return nil
}

// CriticalPath returns the longest cost-weighted path through the
// graph — the dataflow execution's lower bound at infinite parallelism.
func (g *GraphBuilder) CriticalPath() sim.Time {
	n := g.Len()
	finish := make([]sim.Time, n)
	var max sim.Time
	for i := 0; i < n; i++ {
		f := finish[i] + g.Costs[i]
		finish[i] = f // finish[i] held earliest start until now
		if f > max {
			max = f
		}
		for _, s := range g.Succ[i] {
			if f > finish[s] {
				finish[s] = f
			}
		}
	}
	return max
}

// TotalWork returns the sum of task costs.
func (g *GraphBuilder) TotalWork() sim.Time {
	var t sim.Time
	for _, c := range g.Costs {
		t += c
	}
	return t
}

// simEvent is a running task completion in the makespan simulation.
type simEvent struct {
	at   sim.Time
	task int
}

type simEventHeap []simEvent

func (h simEventHeap) Len() int           { return len(h) }
func (h simEventHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h simEventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *simEventHeap) Push(x any)        { *h = append(*h, x.(simEvent)) }
func (h *simEventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Makespan simulates list scheduling of the graph on the given number
// of workers, using task costs as durations and priorities (then
// submission order) to pick among ready tasks. It returns the modelled
// parallel execution time — the quantity the Cholesky speedup
// experiment sweeps over worker counts.
func (g *GraphBuilder) Makespan(workers int) sim.Time {
	if workers < 1 {
		panic("ompss: Makespan with no workers")
	}
	n := g.Len()
	pending := append([]int(nil), g.Pred...)
	ready := &prioIdxHeap{prio: g.Prio}
	for i := 0; i < n; i++ {
		if pending[i] == 0 {
			heap.Push(ready, i)
		}
	}
	running := &simEventHeap{}
	var now sim.Time
	busy := 0
	done := 0
	for done < n {
		for busy < workers && ready.Len() > 0 {
			t := heap.Pop(ready).(int)
			heap.Push(running, simEvent{at: now + g.Costs[t], task: t})
			busy++
		}
		if running.Len() == 0 {
			panic("ompss: makespan deadlock — graph has unreachable tasks")
		}
		ev := heap.Pop(running).(simEvent)
		now = ev.at
		busy--
		done++
		for _, s := range g.Succ[ev.task] {
			pending[s]--
			if pending[s] == 0 {
				heap.Push(ready, s)
			}
		}
	}
	return now
}

// prioIdxHeap orders ready task indices by priority desc, then index.
type prioIdxHeap struct {
	idx  []int
	prio []int
}

func (h *prioIdxHeap) Len() int { return len(h.idx) }
func (h *prioIdxHeap) Less(i, j int) bool {
	a, b := h.idx[i], h.idx[j]
	if h.prio[a] != h.prio[b] {
		return h.prio[a] > h.prio[b]
	}
	return a < b
}
func (h *prioIdxHeap) Swap(i, j int) { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *prioIdxHeap) Push(x any)    { h.idx = append(h.idx, x.(int)) }
func (h *prioIdxHeap) Pop() any {
	old := h.idx
	n := len(old)
	v := old[n-1]
	h.idx = old[:n-1]
	return v
}
