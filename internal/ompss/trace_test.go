package ompss

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestTracerRecordsAllTasks(t *testing.T) {
	tr := NewTracer()
	rt := New(2, WithTracer(tr))
	region := new(int)
	for i := 0; i < 10; i++ {
		rt.Submit("step", func() { time.Sleep(100 * time.Microsecond) },
			Deps{InOut: []any{region}})
	}
	rt.Shutdown()
	events := tr.Events()
	if len(events) != 10 {
		t.Fatalf("events = %d", len(events))
	}
	// A serial chain must not overlap in time.
	for i := 1; i < len(events); i++ {
		if events[i].Start < events[i-1].End {
			t.Fatalf("serialised tasks overlap: %v then %v", events[i-1], events[i])
		}
	}
}

func TestTracerWorkersIdentified(t *testing.T) {
	tr := NewTracer()
	rt := New(4, WithTracer(tr))
	gate := make(chan struct{})
	var started sync.WaitGroup
	started.Add(4)
	for i := 0; i < 4; i++ {
		rt.Submit("block", func() {
			started.Done()
			<-gate
		}, Deps{})
	}
	started.Wait() // all four workers now hold a task
	close(gate)
	rt.Shutdown()
	workers := map[int]bool{}
	for _, e := range tr.Events() {
		workers[e.Worker] = true
	}
	if len(workers) != 4 {
		t.Fatalf("tasks ran on %d workers, want 4", len(workers))
	}
}

func TestTraceSummary(t *testing.T) {
	tr := NewTracer()
	rt := New(2, WithTracer(tr))
	rt.Submit("a", func() { time.Sleep(200 * time.Microsecond) }, Deps{})
	rt.Submit("b", func() { time.Sleep(100 * time.Microsecond) }, Deps{})
	rt.Shutdown()
	s := tr.Summarize()
	if s.Tasks != 2 {
		t.Fatalf("tasks = %d", s.Tasks)
	}
	if s.TimeByName["a"] < 200*time.Microsecond {
		t.Fatalf("task a time %v", s.TimeByName["a"])
	}
	if s.Span <= 0 {
		t.Fatalf("span %v", s.Span)
	}
	var busy time.Duration
	for _, d := range s.BusyByWorker {
		busy += d
	}
	if busy < 300*time.Microsecond {
		t.Fatalf("aggregate busy %v", busy)
	}
}

func TestTraceSummaryEmpty(t *testing.T) {
	tr := NewTracer()
	s := tr.Summarize()
	if s.Tasks != 0 || s.Span != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer()
	rt := New(2, WithTracer(tr))
	region := new(int)
	rt.Submit("produce", func() {}, Deps{Out: []any{region}})
	rt.Submit("consume", func() {}, Deps{In: []any{region}})
	rt.Shutdown()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("chrome events = %d", len(events))
	}
	for _, e := range events {
		if e["ph"] != "X" {
			t.Fatalf("phase %v", e["ph"])
		}
		if _, ok := e["ts"]; !ok {
			t.Fatal("missing ts")
		}
	}
}

func TestNoTracerNoOverheadPath(t *testing.T) {
	// Runtimes without a tracer must still work (nil checks).
	rt := New(2)
	defer rt.Shutdown()
	done := false
	rt.Submit("t", func() { done = true }, Deps{})
	rt.Taskwait()
	if !done {
		t.Fatal("task did not run")
	}
}
