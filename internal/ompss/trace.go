package ompss

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Tracer records the real execution timeline of a runtime: which
// worker ran which task when. It is the reproduction's stand-in for
// the Paraver/Extrae tracing the OmpSs toolchain ships with, and
// exports the Chrome trace-event format so timelines are viewable in
// any chromium-based browser (chrome://tracing).
type Tracer struct {
	mu     sync.Mutex
	start  time.Time
	events []TraceEvent
}

// TraceEvent is one executed task instance.
type TraceEvent struct {
	Name   string
	Task   int // Task.ID
	Worker int
	Start  time.Duration // since tracing began
	End    time.Duration
}

// NewTracer returns a tracer anchored at the current time.
func NewTracer() *Tracer { return &Tracer{start: time.Now()} }

// WithTracer attaches a tracer to the runtime; every executed task is
// recorded with its worker and wall-clock interval.
func WithTracer(tr *Tracer) Option {
	return func(r *Runtime) { r.tracer = tr }
}

func (tr *Tracer) record(name string, task, worker int, start, end time.Time) {
	tr.mu.Lock()
	tr.events = append(tr.events, TraceEvent{
		Name:   name,
		Task:   task,
		Worker: worker,
		Start:  start.Sub(tr.start),
		End:    end.Sub(tr.start),
	})
	tr.mu.Unlock()
}

// Events returns a copy of the recorded events, ordered by start time.
func (tr *Tracer) Events() []TraceEvent {
	tr.mu.Lock()
	out := append([]TraceEvent(nil), tr.events...)
	tr.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Summary aggregates the timeline.
type TraceSummary struct {
	// Span is the wall time from the first task start to the last end.
	Span time.Duration
	// BusyByWorker maps worker id to its total task execution time.
	BusyByWorker map[int]time.Duration
	// TimeByName maps task name to cumulative execution time.
	TimeByName map[string]time.Duration
	// Tasks is the event count.
	Tasks int
}

// Summarize computes a TraceSummary over the recorded events.
func (tr *Tracer) Summarize() TraceSummary {
	events := tr.Events()
	s := TraceSummary{
		BusyByWorker: make(map[int]time.Duration),
		TimeByName:   make(map[string]time.Duration),
		Tasks:        len(events),
	}
	if len(events) == 0 {
		return s
	}
	first, last := events[0].Start, events[0].End
	for _, e := range events {
		if e.Start < first {
			first = e.Start
		}
		if e.End > last {
			last = e.End
		}
		d := e.End - e.Start
		s.BusyByWorker[e.Worker] += d
		s.TimeByName[e.Name] += d
	}
	s.Span = last - first
	return s
}

// WriteChromeTrace emits the timeline as a Chrome trace-event JSON
// array through the repository's shared encoder (obs.WriteChrome),
// one complete event per task, worker id as thread id.
func (tr *Tracer) WriteChromeTrace(w io.Writer) error {
	events := tr.Events()
	out := make([]obs.ChromeEvent, len(events))
	for i, e := range events {
		out[i] = obs.ChromeEvent{
			Name: fmt.Sprintf("%s#%d", e.Name, e.Task),
			Ph:   "X",
			Ts:   float64(e.Start.Microseconds()),
			Dur:  float64((e.End - e.Start).Microseconds()),
			Pid:  0,
			Tid:  e.Worker,
		}
	}
	return obs.WriteChrome(w, out)
}

// AddToTrace copies the recorded timeline into an obs trace process,
// mapping wall time since tracing began onto the virtual-time axis.
// It lets a real-runtime (OmpSs) timeline ride in the same Chrome
// trace as the simulated machine's.
func (tr *Tracer) AddToTrace(t *obs.Trace, process string) {
	sc := t.Process(process)
	if !sc.Enabled() {
		return
	}
	for _, e := range tr.Events() {
		start := sim.Time(e.Start.Nanoseconds()) * sim.Nanosecond
		end := sim.Time(e.End.Nanoseconds()) * sim.Nanosecond
		sc.Span(e.Worker, "ompss", fmt.Sprintf("%s#%d", e.Name, e.Task), start, end)
	}
}
