// Package ompss implements the task-based dataflow runtime that plays
// the role of OmpSs (Mercurium + Nanos++) in the DEEP software stack:
// tasks declare input/output/inout dependences on data regions, the
// runtime derives the task graph and executes it on a worker pool,
// "decoupling how we write (think sequential) from how it is executed"
// (paper slide 23).
//
// The pragma front-end of OmpSs is replaced by an explicit API: the
// paper's
//
//	#pragma omp task input([TS][TS]A, [TS][TS]B) inout([TS][TS]C)
//	void sgemm(float *A, float *B, float *C);
//
// becomes
//
//	rt.Submit("sgemm", func() { linalg.Gemm(a, b, c) },
//	    ompss.Deps{In: []any{a, b}, InOut: []any{c}})
//
// Dependence semantics follow OmpSs/OpenMP: a task reading a region
// depends on the region's last writer; a task writing a region depends
// on the last writer and on every reader submitted since (serialising
// write-after-read), then becomes the new last writer.
package ompss

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/sim"
)

// Deps declares a task's data dependences and scheduling attributes.
type Deps struct {
	// In regions are read; Out regions are overwritten; InOut both.
	// Regions are arbitrary comparable keys — typically pointers to the
	// data blocks the task touches.
	In, Out, InOut []any
	// Priority biases the priority scheduler (higher runs earlier).
	Priority int
	// Cost is the modelled execution time used by virtual-time
	// makespan analysis; it does not affect real execution.
	Cost sim.Time
	// Device names the execution target ("" or "smp" run locally; other
	// names dispatch to an executor registered with WithDeviceExecutor,
	// e.g. "booster" for the offload layer).
	Device string
}

// Task is one node of the dataflow graph.
type Task struct {
	ID       int
	Name     string
	Priority int
	Cost     sim.Time
	Device   string

	fn func()

	mu      sync.Mutex
	pending int     // unresolved predecessors
	succ    []*Task // successors to notify on completion
	done    bool
	doneC   chan struct{} // closed on completion

	// NumPreds records the in-degree at submission, for analysis.
	NumPreds int
}

// Executor runs tasks for one device kind. The runtime's worker calls
// it synchronously; it must execute the task's function (or an
// equivalent remote computation) before returning.
type Executor func(t *Task, run func())

// Runtime is an OmpSs-style task execution engine. Create with New,
// submit tasks, synchronise with Taskwait, and release the workers
// with Shutdown.
type Runtime struct {
	mu         sync.Mutex
	cond       *sync.Cond // outstanding == 0 signalling
	sched      Scheduler
	schedCond  *sync.Cond // ready-queue signalling
	lastWriter map[any]*Task
	readers    map[any][]*Task
	executors  map[string]Executor

	outstanding int
	nextID      int
	shutdown    bool
	workers     int
	tracer      *Tracer

	stats Stats
	// keep all tasks for graph analysis when recording is enabled
	record bool
	all    []*Task
}

// Stats summarises a runtime's execution.
type Stats struct {
	Submitted int
	Executed  int
	Edges     int
	// MaxReady is the high-water mark of the ready queue, a lower
	// bound on exploitable parallelism.
	MaxReady int
	ByName   map[string]int
}

// Option configures a Runtime.
type Option func(*Runtime)

// WithScheduler selects the ready-task scheduling policy (default
// FIFO).
func WithScheduler(s Scheduler) Option {
	return func(r *Runtime) { r.sched = s }
}

// WithDeviceExecutor registers an executor for tasks whose Deps.Device
// equals name.
func WithDeviceExecutor(name string, e Executor) Option {
	return func(r *Runtime) { r.executors[name] = e }
}

// WithRecording keeps every submitted task for graph analysis
// (Tasks, CheckAcyclic, SimulateMakespan).
func WithRecording() Option {
	return func(r *Runtime) { r.record = true }
}

// New returns a runtime with the given number of worker goroutines.
func New(workers int, opts ...Option) *Runtime {
	if workers < 1 {
		panic(fmt.Sprintf("ompss: %d workers", workers))
	}
	r := &Runtime{
		lastWriter: make(map[any]*Task),
		readers:    make(map[any][]*Task),
		executors:  make(map[string]Executor),
		workers:    workers,
	}
	r.stats.ByName = make(map[string]int)
	r.cond = sync.NewCond(&r.mu)
	r.schedCond = sync.NewCond(&r.mu)
	for _, o := range opts {
		o(r)
	}
	if r.sched == nil {
		r.sched = NewFIFO()
	}
	for i := 0; i < workers; i++ {
		go r.worker(i)
	}
	return r
}

// Workers returns the pool size.
func (r *Runtime) Workers() int { return r.workers }

// Submit registers a task with the given dependences. It never blocks:
// the task runs as soon as its predecessors finish and a worker is
// free. Submit may be called from inside a running task (nested
// parallelism).
func (r *Runtime) Submit(name string, fn func(), d Deps) *Task {
	r.mu.Lock()
	if r.shutdown {
		r.mu.Unlock()
		panic("ompss: Submit after Shutdown")
	}
	t := &Task{
		ID:       r.nextID,
		Name:     name,
		Priority: d.Priority,
		Cost:     d.Cost,
		Device:   d.Device,
		fn:       fn,
		doneC:    make(chan struct{}),
	}
	r.nextID++
	r.outstanding++
	r.stats.Submitted++
	r.stats.ByName[name]++
	if r.record {
		r.all = append(r.all, t)
	}

	addDep := func(pred *Task) {
		if pred == nil || pred == t {
			return
		}
		pred.mu.Lock()
		predDone := pred.done
		if !predDone {
			pred.succ = append(pred.succ, t)
		}
		pred.mu.Unlock()
		if !predDone {
			t.pending++
			r.stats.Edges++
			t.NumPreds++
		}
	}

	for _, reg := range d.In {
		addDep(r.lastWriter[reg])
		r.readers[reg] = append(r.readers[reg], t)
	}
	writes := make([]any, 0, len(d.Out)+len(d.InOut))
	writes = append(writes, d.Out...)
	writes = append(writes, d.InOut...)
	for _, reg := range d.InOut {
		addDep(r.lastWriter[reg])
	}
	for _, reg := range d.Out {
		addDep(r.lastWriter[reg])
	}
	for _, reg := range writes {
		for _, reader := range r.readers[reg] {
			addDep(reader)
		}
		r.readers[reg] = nil
		r.lastWriter[reg] = t
		if containsRegion(d.InOut, reg) {
			// An inout also reads: future writers must wait for it.
			r.readers[reg] = append(r.readers[reg], t)
		}
	}

	if t.pending == 0 {
		r.pushReadyLocked(t)
	}
	r.mu.Unlock()
	return t
}

func containsRegion(regs []any, reg any) bool {
	for _, r := range regs {
		if r == reg {
			return true
		}
	}
	return false
}

// pushReadyLocked enqueues a ready task; caller holds r.mu.
func (r *Runtime) pushReadyLocked(t *Task) {
	r.sched.Push(t)
	if n := r.sched.Len(); n > r.stats.MaxReady {
		r.stats.MaxReady = n
	}
	r.schedCond.Signal()
}

func (r *Runtime) worker(id int) {
	for {
		r.mu.Lock()
		for r.sched.Len() == 0 && !r.shutdown {
			r.schedCond.Wait()
		}
		if r.shutdown && r.sched.Len() == 0 {
			r.mu.Unlock()
			return
		}
		t := r.sched.Pop()
		r.mu.Unlock()
		r.execute(t, id)
	}
}

func (r *Runtime) execute(t *Task, worker int) {
	run := t.fn
	if run == nil {
		run = func() {}
	}
	var began time.Time
	if r.tracer != nil {
		began = time.Now()
	}
	if ex, ok := r.executors[t.Device]; ok && t.Device != "" && t.Device != "smp" {
		ex(t, run)
	} else {
		run()
	}
	if r.tracer != nil {
		r.tracer.record(t.Name, t.ID, worker, began, time.Now())
	}
	// Mark done and release successors.
	t.mu.Lock()
	t.done = true
	succ := t.succ
	t.succ = nil
	t.mu.Unlock()
	close(t.doneC)
	r.mu.Lock()
	for _, s := range succ {
		s.pending--
		if s.pending == 0 {
			r.pushReadyLocked(s)
		}
	}
	r.outstanding--
	r.stats.Executed++
	if r.outstanding == 0 {
		r.cond.Broadcast()
	}
	r.mu.Unlock()
}

// Taskwait blocks until every task submitted so far (including tasks
// they spawned) has completed. Call it from the submitting goroutine,
// not from inside a task: a task blocking in Taskwait occupies its
// worker and with a single-worker pool would deadlock.
func (r *Runtime) Taskwait() {
	r.mu.Lock()
	for r.outstanding > 0 {
		r.cond.Wait()
	}
	r.mu.Unlock()
}

// Wait blocks until the task has completed.
func (t *Task) Wait() { <-t.doneC }

// Done reports whether the task has completed without blocking.
func (t *Task) Done() bool {
	select {
	case <-t.doneC:
		return true
	default:
		return false
	}
}

// TaskwaitOn blocks until the current last writer of every given
// region has completed — the OmpSs "taskwait on(...)" clause. Unlike
// Taskwait it does not drain the whole runtime, so producers of other
// regions keep running.
func (r *Runtime) TaskwaitOn(regions ...any) {
	r.mu.Lock()
	writers := make([]*Task, 0, len(regions))
	for _, reg := range regions {
		if w := r.lastWriter[reg]; w != nil {
			writers = append(writers, w)
		}
	}
	r.mu.Unlock()
	for _, w := range writers {
		w.Wait()
	}
}

// Shutdown waits for completion and stops the workers. The runtime
// cannot be used afterwards.
func (r *Runtime) Shutdown() {
	r.Taskwait()
	r.mu.Lock()
	r.shutdown = true
	r.schedCond.Broadcast()
	r.mu.Unlock()
}

// Stats returns a snapshot of execution statistics.
func (r *Runtime) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	byName := make(map[string]int, len(s.ByName))
	for k, v := range s.ByName {
		byName[k] = v
	}
	s.ByName = byName
	return s
}

// Tasks returns the recorded tasks (WithRecording only).
func (r *Runtime) Tasks() []*Task {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Task(nil), r.all...)
}
