package ompss

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sim"
)

func TestSingleTaskRuns(t *testing.T) {
	rt := New(2)
	defer rt.Shutdown()
	var ran int32
	rt.Submit("t", func() { atomic.AddInt32(&ran, 1) }, Deps{})
	rt.Taskwait()
	if ran != 1 {
		t.Fatalf("ran = %d", ran)
	}
}

func TestRAWDependence(t *testing.T) {
	rt := New(4)
	defer rt.Shutdown()
	region := new(int)
	var order []string
	var mu sync.Mutex
	mark := func(s string) func() {
		return func() {
			mu.Lock()
			order = append(order, s)
			mu.Unlock()
		}
	}
	rt.Submit("writer", mark("w"), Deps{Out: []any{region}})
	rt.Submit("reader1", mark("r1"), Deps{In: []any{region}})
	rt.Submit("reader2", mark("r2"), Deps{In: []any{region}})
	rt.Taskwait()
	if len(order) != 3 || order[0] != "w" {
		t.Fatalf("order = %v, want writer first", order)
	}
}

func TestWARDependence(t *testing.T) {
	// A writer after readers must wait for all of them.
	rt := New(4)
	defer rt.Shutdown()
	region := new(int)
	var readersDone int32
	var writerSawReaders int32
	rt.Submit("w0", func() {}, Deps{Out: []any{region}})
	for i := 0; i < 3; i++ {
		rt.Submit("r", func() {
			atomic.AddInt32(&readersDone, 1)
		}, Deps{In: []any{region}})
	}
	rt.Submit("w1", func() {
		writerSawReaders = atomic.LoadInt32(&readersDone)
	}, Deps{Out: []any{region}})
	rt.Taskwait()
	if writerSawReaders != 3 {
		t.Fatalf("writer ran after %d of 3 readers", writerSawReaders)
	}
}

func TestWAWSerialises(t *testing.T) {
	rt := New(8)
	defer rt.Shutdown()
	region := new(int)
	val := 0 // only touched by serialised writers
	const n = 50
	for i := 0; i < n; i++ {
		rt.Submit("w", func() { val++ }, Deps{InOut: []any{region}})
	}
	rt.Taskwait()
	if val != n {
		t.Fatalf("val = %d, want %d (writers raced)", val, n)
	}
}

func TestInOutChainsAreSequential(t *testing.T) {
	rt := New(8)
	defer rt.Shutdown()
	region := new(int)
	var seq []int
	for i := 0; i < 20; i++ {
		i := i
		rt.Submit("step", func() { seq = append(seq, i) }, Deps{InOut: []any{region}})
	}
	rt.Taskwait()
	for i, v := range seq {
		if v != i {
			t.Fatalf("sequence broken at %d: %v", i, seq)
		}
	}
}

func TestIndependentTasksRunConcurrently(t *testing.T) {
	rt := New(4)
	defer rt.Shutdown()
	var peak, cur int32
	var wg sync.WaitGroup
	gate := make(chan struct{})
	wg.Add(4)
	for i := 0; i < 4; i++ {
		rt.Submit("free", func() {
			c := atomic.AddInt32(&cur, 1)
			for {
				p := atomic.LoadInt32(&peak)
				if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
					break
				}
			}
			wg.Done()
			<-gate // hold all four until everyone arrived
			atomic.AddInt32(&cur, -1)
		}, Deps{})
	}
	wg.Wait()
	close(gate)
	rt.Taskwait()
	if peak != 4 {
		t.Fatalf("peak concurrency %d, want 4", peak)
	}
}

func TestNestedSubmission(t *testing.T) {
	rt := New(4)
	defer rt.Shutdown()
	var leaves int32
	rt.Submit("parent", func() {
		for i := 0; i < 5; i++ {
			rt.Submit("leaf", func() { atomic.AddInt32(&leaves, 1) }, Deps{})
		}
	}, Deps{})
	rt.Taskwait()
	if leaves != 5 {
		t.Fatalf("leaves = %d", leaves)
	}
}

func TestDeviceExecutorDispatch(t *testing.T) {
	var offloaded int32
	rt := New(2, WithDeviceExecutor("booster", func(task *Task, run func()) {
		atomic.AddInt32(&offloaded, 1)
		run()
	}))
	defer rt.Shutdown()
	var ran int32
	rt.Submit("kernel", func() { atomic.AddInt32(&ran, 1) }, Deps{Device: "booster"})
	rt.Submit("local", func() { atomic.AddInt32(&ran, 1) }, Deps{Device: "smp"})
	rt.Taskwait()
	if offloaded != 1 {
		t.Fatalf("offloaded = %d", offloaded)
	}
	if ran != 2 {
		t.Fatalf("ran = %d", ran)
	}
}

func TestStats(t *testing.T) {
	rt := New(2)
	defer rt.Shutdown()
	region := new(int)
	rt.Submit("a", func() {}, Deps{Out: []any{region}})
	rt.Submit("b", func() {}, Deps{In: []any{region}})
	rt.Taskwait()
	s := rt.Stats()
	if s.Submitted != 2 || s.Executed != 2 {
		t.Fatalf("stats %+v", s)
	}
	if s.Edges != 1 {
		t.Fatalf("edges = %d", s.Edges)
	}
	if s.ByName["a"] != 1 || s.ByName["b"] != 1 {
		t.Fatalf("by-name %v", s.ByName)
	}
}

func TestSubmitAfterShutdownPanics(t *testing.T) {
	rt := New(1)
	rt.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("Submit after Shutdown accepted")
		}
	}()
	rt.Submit("late", func() {}, Deps{})
}

func TestSchedulers(t *testing.T) {
	mk := func(id, prio int) *Task { return &Task{ID: id, Priority: prio} }
	t.Run("fifo", func(t *testing.T) {
		s := NewFIFO()
		s.Push(mk(1, 0))
		s.Push(mk(2, 9))
		s.Push(mk(3, 5))
		if s.Pop().ID != 1 || s.Pop().ID != 2 || s.Pop().ID != 3 {
			t.Fatal("FIFO order broken")
		}
		if s.Pop() != nil {
			t.Fatal("empty pop should be nil")
		}
	})
	t.Run("lifo", func(t *testing.T) {
		s := NewLIFO()
		s.Push(mk(1, 0))
		s.Push(mk(2, 0))
		if s.Pop().ID != 2 || s.Pop().ID != 1 {
			t.Fatal("LIFO order broken")
		}
	})
	t.Run("priority", func(t *testing.T) {
		s := NewPriority()
		s.Push(mk(1, 1))
		s.Push(mk(2, 9))
		s.Push(mk(3, 9))
		s.Push(mk(4, 0))
		want := []int{2, 3, 1, 4} // prio desc, ties by id
		for _, w := range want {
			if got := s.Pop().ID; got != w {
				t.Fatalf("priority order: got %d, want %d", got, w)
			}
		}
	})
}

func TestPrioritySchedulerAffectsOrder(t *testing.T) {
	rt := New(1, WithScheduler(NewPriority()))
	defer rt.Shutdown()
	var order []int
	var mu sync.Mutex
	block := make(chan struct{})
	// First task blocks the single worker so the rest queue up.
	rt.Submit("gate", func() { <-block }, Deps{})
	for i := 0; i < 4; i++ {
		i := i
		rt.Submit("t", func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}, Deps{Priority: i})
	}
	close(block)
	rt.Taskwait()
	want := []int{3, 2, 1, 0}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

// TestRandomGraphSerialisability: execute a random task graph where
// every task performs reads/writes on shared cells; the result must
// equal sequential execution. This is the core OmpSs correctness
// property ("think sequential").
func TestRandomGraphSerialisability(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		const cells = 6
		const ntasks = 60
		type op struct {
			in, out []int
		}
		ops := make([]op, ntasks)
		for i := range ops {
			var o op
			for c := 0; c < cells; c++ {
				switch r.Intn(4) {
				case 0:
					o.in = append(o.in, c)
				case 1:
					o.out = append(o.out, c)
				}
			}
			ops[i] = o
		}
		apply := func(state []int64, i int, o op) {
			sum := int64(i + 1)
			for _, c := range o.in {
				sum += state[c]
			}
			for _, c := range o.out {
				state[c] = state[c]*3 + sum
			}
		}
		// Sequential reference.
		ref := make([]int64, cells)
		for i, o := range ops {
			apply(ref, i, o)
		}
		// Parallel execution with dependence tracking.
		got := make([]int64, cells)
		regions := make([]any, cells)
		for c := range regions {
			regions[c] = new(int)
		}
		rt := New(4)
		for i, o := range ops {
			i, o := i, o
			var d Deps
			for _, c := range o.in {
				d.In = append(d.In, regions[c])
			}
			for _, c := range o.out {
				d.InOut = append(d.InOut, regions[c])
			}
			rt.Submit("op", func() { apply(got, i, o) }, d)
		}
		rt.Shutdown()
		for c := range ref {
			if ref[c] != got[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxReadyTracksParallelism(t *testing.T) {
	rt := New(1)
	defer rt.Shutdown()
	gate := make(chan struct{})
	rt.Submit("gate", func() { <-gate }, Deps{})
	for i := 0; i < 10; i++ {
		rt.Submit("free", func() {}, Deps{})
	}
	close(gate)
	rt.Taskwait()
	if s := rt.Stats(); s.MaxReady < 10 {
		t.Fatalf("MaxReady = %d, want >= 10", s.MaxReady)
	}
}

func TestCostAndTimePlumbing(t *testing.T) {
	rt := New(1, WithRecording())
	defer rt.Shutdown()
	rt.Submit("k", func() {}, Deps{Cost: 5 * sim.Microsecond, Priority: 3})
	rt.Taskwait()
	tasks := rt.Tasks()
	if len(tasks) != 1 || tasks[0].Cost != 5*sim.Microsecond || tasks[0].Priority != 3 {
		t.Fatalf("recorded task %+v", tasks[0])
	}
}

func TestNewPanicsOnZeroWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) accepted")
		}
	}()
	New(0)
}

func BenchmarkSubmitExecute(b *testing.B) {
	rt := New(4)
	defer rt.Shutdown()
	region := new(int)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Submit("t", func() {}, Deps{InOut: []any{region}})
	}
	rt.Taskwait()
}

func ExampleRuntime_Submit() {
	rt := New(2)
	defer rt.Shutdown()
	a, b := new(int), new(int)
	rt.Submit("produce", func() { *a = 21 }, Deps{Out: []any{a}})
	rt.Submit("transform", func() { *b = *a * 2 }, Deps{In: []any{a}, Out: []any{b}})
	rt.Taskwait()
	fmt.Println(*b)
	// Output: 42
}
