package ompss

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sim"
)

func chainGraph(n int, cost sim.Time) *GraphBuilder {
	g := NewGraphBuilder()
	region := new(int)
	for i := 0; i < n; i++ {
		g.Add("step", Deps{InOut: []any{region}, Cost: cost})
	}
	return g
}

func independentGraph(n int, cost sim.Time) *GraphBuilder {
	g := NewGraphBuilder()
	for i := 0; i < n; i++ {
		g.Add("free", Deps{Cost: cost})
	}
	return g
}

func TestGraphBuilderDeps(t *testing.T) {
	g := NewGraphBuilder()
	a, b := new(int), new(int)
	w := g.Add("w", Deps{Out: []any{a}})
	r1 := g.Add("r1", Deps{In: []any{a}})
	r2 := g.Add("r2", Deps{In: []any{a}})
	w2 := g.Add("w2", Deps{Out: []any{a}, In: []any{b}})
	if g.Pred[w] != 0 || g.Pred[r1] != 1 || g.Pred[r2] != 1 {
		t.Fatalf("pred counts %v", g.Pred)
	}
	// w2 depends on w (WAW) and both readers (WAR).
	if g.Pred[w2] != 3 {
		t.Fatalf("w2 pred = %d, want 3", g.Pred[w2])
	}
	if err := g.CheckAcyclic(); err != nil {
		t.Fatal(err)
	}
}

func TestCriticalPathChain(t *testing.T) {
	g := chainGraph(10, sim.Microsecond)
	if got := g.CriticalPath(); got != 10*sim.Microsecond {
		t.Fatalf("chain critical path %v", got)
	}
	if got := g.TotalWork(); got != 10*sim.Microsecond {
		t.Fatalf("total work %v", got)
	}
}

func TestCriticalPathIndependent(t *testing.T) {
	g := independentGraph(10, sim.Microsecond)
	if got := g.CriticalPath(); got != sim.Microsecond {
		t.Fatalf("independent critical path %v", got)
	}
}

func TestMakespanChainDoesNotSpeedUp(t *testing.T) {
	g := chainGraph(20, sim.Microsecond)
	if m1, m8 := g.Makespan(1), g.Makespan(8); m1 != m8 {
		t.Fatalf("chain sped up: %v vs %v", m1, m8)
	}
}

func TestMakespanIndependentScalesLinearly(t *testing.T) {
	g := independentGraph(64, sim.Microsecond)
	m1 := g.Makespan(1)
	m8 := g.Makespan(8)
	if m1 != 64*sim.Microsecond || m8 != 8*sim.Microsecond {
		t.Fatalf("makespans %v %v", m1, m8)
	}
}

func TestMakespanBounds(t *testing.T) {
	// Makespan must respect both the work bound and the critical path
	// bound for random graphs (Graham's bounds).
	check := func(seed uint64) bool {
		r := rng.New(seed)
		g := NewGraphBuilder()
		regions := make([]any, 5)
		for i := range regions {
			regions[i] = new(int)
		}
		for i := 0; i < 40; i++ {
			var d Deps
			d.Cost = sim.Time(r.Intn(100)+1) * sim.Nanosecond
			for _, reg := range regions {
				switch r.Intn(5) {
				case 0:
					d.In = append(d.In, reg)
				case 1:
					d.InOut = append(d.InOut, reg)
				}
			}
			g.Add("t", d)
		}
		if g.CheckAcyclic() != nil {
			return false
		}
		cp := g.CriticalPath()
		work := g.TotalWork()
		for _, w := range []int{1, 2, 4, 16} {
			m := g.Makespan(w)
			if m < cp {
				return false // beat the critical path: impossible
			}
			if w == 1 && m != work {
				return false
			}
			lower := work / sim.Time(w)
			if m < lower {
				return false
			}
			// Graham bound: m <= work/w + cp.
			if m > work/sim.Time(w)+cp {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMakespanMoreWorkersNeverSlower(t *testing.T) {
	r := rng.New(99)
	g := NewGraphBuilder()
	regions := make([]any, 4)
	for i := range regions {
		regions[i] = new(int)
	}
	for i := 0; i < 60; i++ {
		var d Deps
		d.Cost = sim.Time(r.Intn(50)+1) * sim.Nanosecond
		if r.Bool(0.5) {
			d.In = append(d.In, regions[r.Intn(4)])
		}
		if r.Bool(0.4) {
			d.InOut = append(d.InOut, regions[r.Intn(4)])
		}
		g.Add("t", d)
	}
	prev := g.Makespan(1)
	for _, w := range []int{2, 4, 8, 32} {
		m := g.Makespan(w)
		// List scheduling anomalies can make more workers slower in
		// theory; with priority=0 FIFO order on these graphs it stays
		// monotone. Allow a small tolerance.
		if float64(m) > float64(prev)*1.05 {
			t.Fatalf("makespan rose from %v to %v at %d workers", prev, m, w)
		}
		prev = m
	}
}

func TestMakespanPanicsWithoutWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Makespan(0) accepted")
		}
	}()
	independentGraph(3, sim.Microsecond).Makespan(0)
}
