// Package resil is the resilience layer of the DEEP reproduction: a
// deterministic fault-injection process generator, a multi-level
// checkpoint/restart cost model, and the optimal-interval theory
// (Young/Daly) that ties the two together.
//
// The DEEP paper argues the Cluster-Booster split pays off only at
// scale — thousands of many-core booster nodes — and at that node
// count failures stop being exceptional: the DEEP-ER follow-on project
// was dedicated entirely to resiliency and multi-level checkpointing.
// This package lets the simulator explore that regime. All randomness
// flows through internal/rng with explicit seeds, so every failure
// trace is bit-reproducible; with a zero failure rate nothing is
// scheduled and the simulator behaves exactly as the perfect machine.
package resil

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Distribution draws positive durations in seconds: times-to-failure
// and times-to-repair.
type Distribution interface {
	// Sample returns one draw, in seconds. Draws are > 0.
	Sample(r *rng.Source) float64
	// Mean returns the expectation, in seconds (MTBF/MTTR).
	Mean() float64
}

// Exponential is the memoryless lifetime model: the classic per-node
// MTBF assumption behind Young's and Daly's interval formulas.
type Exponential struct {
	// M is the mean (MTBF or MTTR) in seconds.
	M float64
}

// Sample implements Distribution.
func (e Exponential) Sample(r *rng.Source) float64 { return r.Exp(e.M) }

// Mean implements Distribution.
func (e Exponential) Mean() float64 { return e.M }

// Weibull models lifetimes with aging (Shape > 1, wear-out) or infant
// mortality (Shape < 1, the empirically observed HPC regime). Shape 1
// degenerates to Exponential with mean Scale.
type Weibull struct {
	Shape float64 // k > 0
	Scale float64 // lambda, seconds
}

// Sample implements Distribution by inverse-CDF:
// lambda * (-ln(1-u))^(1/k).
func (w Weibull) Sample(r *rng.Source) float64 {
	if w.Shape <= 0 || w.Scale <= 0 {
		panic(fmt.Sprintf("resil: Weibull(%v, %v) invalid", w.Shape, w.Scale))
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return w.Scale * math.Pow(-math.Log(u), 1/w.Shape)
}

// Mean implements Distribution: lambda * Gamma(1 + 1/k).
func (w Weibull) Mean() float64 { return w.Scale * math.Gamma(1+1/w.Shape) }

// Fixed is a deterministic duration — useful for repair times (a fixed
// reboot/reintegration delay) and for exact-value tests.
type Fixed struct {
	D float64 // seconds
}

// Sample implements Distribution.
func (f Fixed) Sample(*rng.Source) float64 { return f.D }

// Mean implements Distribution.
func (f Fixed) Mean() float64 { return f.D }

// YoungInterval returns Young's first-order optimal checkpoint period
// sqrt(2 * writeCost * mtbf), both arguments and the result in seconds.
func YoungInterval(writeCost, mtbf float64) float64 {
	return math.Sqrt(2 * writeCost * mtbf)
}

// DalyInterval returns Daly's higher-order estimate of the optimal
// checkpoint period (J. T. Daly, FGCS 2006): for writeCost < 2*mtbf,
//
//	tau = sqrt(2*d*M) * [1 + (1/3)sqrt(d/(2M)) + (1/9)(d/(2M))] - d
//
// and tau = mtbf otherwise. Arguments and result in seconds.
func DalyInterval(writeCost, mtbf float64) float64 {
	if writeCost >= 2*mtbf {
		return mtbf
	}
	x := writeCost / (2 * mtbf)
	return math.Sqrt(2*writeCost*mtbf)*(1+math.Sqrt(x)/3+x/9) - writeCost
}
