package resil

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
)

func TestDistributionMeans(t *testing.T) {
	r := rng.New(42)
	for _, tc := range []struct {
		name string
		d    Distribution
	}{
		{"exp", Exponential{M: 50}},
		{"weibull-wearout", Weibull{Shape: 1.5, Scale: 50}},
		{"weibull-infant", Weibull{Shape: 0.7, Scale: 50}},
		{"fixed", Fixed{D: 50}},
	} {
		const n = 200000
		sum := 0.0
		for i := 0; i < n; i++ {
			v := tc.d.Sample(r)
			if v <= 0 {
				t.Fatalf("%s: non-positive sample %v", tc.name, v)
			}
			sum += v
		}
		got := sum / n
		want := tc.d.Mean()
		if math.Abs(got-want)/want > 0.02 {
			t.Errorf("%s: empirical mean %.2f, analytic %.2f", tc.name, got, want)
		}
	}
}

func TestWeibullShapeOneIsExponential(t *testing.T) {
	w := Weibull{Shape: 1, Scale: 30}
	if math.Abs(w.Mean()-30) > 1e-9 {
		t.Fatalf("Weibull(1, 30) mean %v", w.Mean())
	}
}

func TestYoungDalyIntervals(t *testing.T) {
	// delta = 60 s, M = 24 h: Young = sqrt(2*60*86400) ~ 3221 s.
	young := YoungInterval(60, 86400)
	if math.Abs(young-math.Sqrt(2*60*86400)) > 1e-9 {
		t.Fatalf("young = %v", young)
	}
	// Daly's correction is small and positive-ish near Young for
	// delta << M, and always close to Young in that regime.
	daly := DalyInterval(60, 86400)
	if math.Abs(daly-young)/young > 0.05 {
		t.Fatalf("daly %v far from young %v", daly, young)
	}
	// Degenerate regime: write cost >= 2*MTBF collapses to MTBF.
	if got := DalyInterval(100, 40); got != 40 {
		t.Fatalf("degenerate daly = %v", got)
	}
}

func TestInjectorDeterministicAndBounded(t *testing.T) {
	run := func() []sim.Time {
		eng := sim.New()
		inj := NewInjector(eng, 1000*sim.Second)
		var times []sim.Time
		rec := &recorder{onFail: func(int) { times = append(times, eng.Now()) }}
		inj.Nodes(16, Faults{TTF: Exponential{M: 100}, TTR: Fixed{D: 5}}, 7, rec)
		eng.Run()
		if inj.NodeFailures != uint64(len(times)) {
			t.Fatalf("counter %d vs %d observed", inj.NodeFailures, len(times))
		}
		if inj.NodeRepairs > inj.NodeFailures {
			t.Fatalf("%d repairs for %d failures", inj.NodeRepairs, inj.NodeFailures)
		}
		return times
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no failures injected")
	}
	if len(a) != len(b) {
		t.Fatalf("runs differ: %d vs %d failures", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("failure %d at %v vs %v", i, a[i], b[i])
		}
		if a[i] > 1000*sim.Second {
			t.Fatalf("failure %d at %v beyond horizon", i, a[i])
		}
	}
	// 16 nodes, MTBF 100 s, horizon 1000 s: expect on the order of 160
	// failures; insist on the right order of magnitude.
	if len(a) < 80 || len(a) > 320 {
		t.Fatalf("%d failures, expected ~160", len(a))
	}
}

func TestInjectorZeroRateInjectsNothing(t *testing.T) {
	eng := sim.New()
	inj := NewInjector(eng, 1000*sim.Second)
	inj.Nodes(64, Faults{}, 7, &recorder{})              // nil TTF = off
	inj.Links(64, Faults{}, 7, &linkRecorder{})          // nil TTF = off
	inj.Nodes(0, Faults{TTF: Exponential{M: 1}}, 7, nil) // zero nodes
	if eng.Pending() != 0 {
		t.Fatalf("%d events scheduled with injection off", eng.Pending())
	}
}

func TestInjectorAlternatesFailRepair(t *testing.T) {
	eng := sim.New()
	inj := NewInjector(eng, 500*sim.Second)
	state := map[int]bool{} // id -> down
	rec := &recorder{
		onFail: func(id int) {
			if state[id] {
				t.Fatalf("node %d failed while down", id)
			}
			state[id] = true
		},
		onRepair: func(id int) {
			if !state[id] {
				t.Fatalf("node %d repaired while up", id)
			}
			state[id] = false
		},
	}
	inj.Nodes(8, Faults{TTF: Weibull{Shape: 0.7, Scale: 50}, TTR: Exponential{M: 2}}, 11, rec)
	eng.Run()
	if inj.NodeFailures == 0 {
		t.Fatal("no failures")
	}
}

func TestInjectorLinks(t *testing.T) {
	eng := sim.New()
	inj := NewInjector(eng, 300*sim.Second)
	var fails, repairs int
	rec := &linkRecorder{
		onFail:   func(int) { fails++ },
		onRepair: func(int) { repairs++ },
	}
	inj.Links(4, Faults{TTF: Exponential{M: 40}, TTR: Fixed{D: 1}}, 3, rec)
	eng.Run()
	if fails == 0 || uint64(fails) != inj.LinkFailures {
		t.Fatalf("fails %d (counter %d)", fails, inj.LinkFailures)
	}
	if repairs != fails {
		t.Fatalf("%d repairs for %d failures (all repairs should be delivered)", repairs, fails)
	}
}

type recorder struct {
	onFail   func(int)
	onRepair func(int)
}

func (r *recorder) NodeFailed(id int) {
	if r.onFail != nil {
		r.onFail(id)
	}
}
func (r *recorder) NodeRepaired(id int) {
	if r.onRepair != nil {
		r.onRepair(id)
	}
}

type linkRecorder struct {
	onFail   func(int)
	onRepair func(int)
}

func (r *linkRecorder) LinkFailed(id int) {
	if r.onFail != nil {
		r.onFail(id)
	}
}
func (r *linkRecorder) LinkRepaired(id int) {
	if r.onRepair != nil {
		r.onRepair(id)
	}
}

func TestCheckpointValidate(t *testing.T) {
	good := &Checkpoint{Interval: sim.Second, LocalWrite: 100 * sim.Millisecond, Buddy: true}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Checkpoint{
		{Interval: 0, Buddy: true},
		{Interval: sim.Second, LocalWrite: -1, Buddy: true},
		{Interval: sim.Second}, // local-only without buddy: unrestorable
		{Interval: sim.Second, GlobalEvery: -1, Buddy: true},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestCheckpointRunWall(t *testing.T) {
	c := &Checkpoint{Interval: 10 * sim.Second, LocalWrite: sim.Second, Buddy: true}
	// 35 s of work: checkpoints after 10, 20, 30 -> 3 writes of 2 s.
	if got := c.RunWall(35 * sim.Second); got != 41*sim.Second {
		t.Fatalf("RunWall(35 s) = %v", got)
	}
	// Exactly 30 s: the checkpoint at 30 s would be useless.
	if got := c.RunWall(30 * sim.Second); got != 34*sim.Second {
		t.Fatalf("RunWall(30 s) = %v", got)
	}
	if got := c.Overhead(35 * sim.Second); got != 6*sim.Second {
		t.Fatalf("Overhead = %v", got)
	}
	// Multi-level: every 2nd checkpoint also global.
	m := &Checkpoint{
		Interval: 10 * sim.Second, LocalWrite: sim.Second,
		GlobalWrite: 5 * sim.Second, GlobalEvery: 2,
	}
	// 45 s: 4 ckpts, 4x1 local + 2x5 global = 14 s overhead.
	if got := m.RunWall(45 * sim.Second); got != 59*sim.Second {
		t.Fatalf("multi-level RunWall = %v", got)
	}
}

func TestCheckpointProgressBuddy(t *testing.T) {
	c := &Checkpoint{
		Interval: 10 * sim.Second, LocalWrite: sim.Second,
		LocalRestore: 500 * sim.Millisecond, Buddy: true,
	}
	// Segment = 10 + 2 = 12 s. Before the first write completes:
	// nothing saved.
	if saved, _ := c.Progress(11 * sim.Second); saved != 0 {
		t.Fatalf("saved %v before first write completed", saved)
	}
	// Just past the first write: 10 s saved, local restore cost.
	saved, restore := c.Progress(12 * sim.Second)
	if saved != 10*sim.Second || restore != 500*sim.Millisecond {
		t.Fatalf("saved %v restore %v", saved, restore)
	}
	// Deep into segment 3: two checkpoints done.
	if saved, _ = c.Progress(30 * sim.Second); saved != 20*sim.Second {
		t.Fatalf("saved %v at 30 s", saved)
	}
}

func TestCheckpointProgressMultiLevelSurvivability(t *testing.T) {
	// No buddy: only global checkpoints survive a node failure.
	c := &Checkpoint{
		Interval: 10 * sim.Second, LocalWrite: sim.Second,
		LocalRestore: 500 * sim.Millisecond,
		GlobalWrite:  4 * sim.Second, GlobalRestore: 2 * sim.Second,
		GlobalEvery: 2,
	}
	// Timeline: [10 work][1 local] [10 work][1 local+4 global] ...
	// After 12 s only ckpt 1 (local) is done -> dies with the node.
	if saved, restore := c.Progress(12 * sim.Second); saved != 0 || restore != 0 {
		t.Fatalf("local-only ckpt survived: saved %v restore %v", saved, restore)
	}
	// After 26 s ckpt 2 (global) is done -> 20 s saved, global restore.
	saved, restore := c.Progress(26 * sim.Second)
	if saved != 20*sim.Second || restore != 2*sim.Second {
		t.Fatalf("saved %v restore %v", saved, restore)
	}
}

func TestEffectiveWriteSeconds(t *testing.T) {
	c := &Checkpoint{
		Interval: sim.Second, LocalWrite: sim.Second, Buddy: true,
		GlobalWrite: 10 * sim.Second, GlobalEvery: 5,
	}
	// 2x1 buddy local + 10/5 amortised global = 4 s.
	if got := c.EffectiveWriteSeconds(); math.Abs(got-4) > 1e-9 {
		t.Fatalf("effective write %v", got)
	}
}

func TestExpectedWallMatchesDalyShape(t *testing.T) {
	// The analytic expected wall time should be minimised near the
	// Daly interval.
	const work, mtbf = 600.0, 50.0
	delta := 1.0
	daly := DalyInterval(delta, mtbf)
	wallAt := func(interval float64) float64 {
		c := &Checkpoint{
			Interval:   sim.FromSeconds(interval),
			LocalWrite: sim.FromSeconds(delta / 2), // buddy doubles it
			Buddy:      true,
		}
		return c.ExpectedWallSeconds(work, mtbf)
	}
	best := wallAt(daly)
	if wallAt(daly/8) <= best || wallAt(daly*8) <= best {
		t.Fatalf("daly %v not near-optimal: %v vs %v / %v",
			daly, best, wallAt(daly/8), wallAt(daly*8))
	}
}
