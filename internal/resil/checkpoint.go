package resil

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Checkpoint is a multi-level checkpoint/restart cost model in the
// style of DEEP-ER / SCR: every Interval of compute the job writes a
// checkpoint to node-local SSD, and every GlobalEvery-th checkpoint is
// additionally written to the global parallel filesystem. The two
// tiers have distinct write/restore costs (SSD is cheap, the global FS
// is not) and distinct survivability:
//
//   - A plain local checkpoint lives on the node's own SSD and dies
//     with the node. It only protects against a node failure when
//     Buddy is set, which models SCR-style buddy replication to a
//     partner node's SSD at the price of doubling the local write.
//   - A global checkpoint always survives.
//
// On a node failure the job restarts from the newest checkpoint that
// survived: the buddy-replicated local one if Buddy, else the last
// global one. The zero Checkpoint is invalid; Interval must be > 0.
type Checkpoint struct {
	// Interval is the compute time between checkpoints.
	Interval sim.Time
	// LocalWrite and LocalRestore are the SSD-tier costs.
	LocalWrite   sim.Time
	LocalRestore sim.Time
	// GlobalWrite and GlobalRestore are the parallel-FS-tier costs.
	GlobalWrite   sim.Time
	GlobalRestore sim.Time
	// GlobalEvery promotes every k-th checkpoint to the global tier;
	// 0 disables the global tier (local-only checkpointing).
	GlobalEvery int
	// Buddy replicates local checkpoints to a partner node (2x
	// LocalWrite) so they survive the loss of their own node.
	Buddy bool
	// IOWatts is the extra per-node draw while checkpoint or restore
	// I/O is in flight (SSD + filesystem traffic on top of the node's
	// own state power). Zero disables I/O energy accounting.
	IOWatts float64
}

// Validate reports a descriptive error for a malformed model.
func (c *Checkpoint) Validate() error {
	if c.Interval <= 0 {
		return fmt.Errorf("resil: checkpoint interval %v not positive", c.Interval)
	}
	if c.LocalWrite < 0 || c.LocalRestore < 0 || c.GlobalWrite < 0 || c.GlobalRestore < 0 {
		return fmt.Errorf("resil: negative checkpoint cost")
	}
	if c.GlobalEvery < 0 {
		return fmt.Errorf("resil: GlobalEvery %d negative", c.GlobalEvery)
	}
	if c.GlobalEvery == 0 && !c.Buddy {
		return fmt.Errorf("resil: local-only checkpoints without Buddy cannot survive a node failure")
	}
	if c.IOWatts < 0 {
		return fmt.Errorf("resil: negative checkpoint I/O power %v", c.IOWatts)
	}
	return nil
}

// localCost is the wall cost of one local-tier write.
func (c *Checkpoint) localCost() sim.Time {
	if c.Buddy {
		return 2 * c.LocalWrite
	}
	return c.LocalWrite
}

// WriteCost is the wall cost of the i-th checkpoint write (1-based):
// the local tier plus the global tier when i is promoted. The
// observability layer walks it to reconstruct checkpoint span times.
func (c *Checkpoint) WriteCost(i int) sim.Time { return c.writeCost(i) }

// writeCost is the wall cost of the i-th checkpoint (1-based).
func (c *Checkpoint) writeCost(i int) sim.Time {
	w := c.localCost()
	if c.GlobalEvery > 0 && i%c.GlobalEvery == 0 {
		w += c.GlobalWrite
	}
	return w
}

// count returns how many checkpoints a run of `work` compute time
// takes: one after each full Interval, except that a run ending
// exactly on an interval boundary skips the final useless write.
func (c *Checkpoint) count(work sim.Time) int {
	if work <= 0 {
		return 0
	}
	if c.Interval <= 0 {
		panic(fmt.Sprintf("resil: checkpoint interval %v", c.Interval))
	}
	return int((work - 1) / c.Interval)
}

// RunWall returns the wall time to execute `work` of compute with
// checkpoint writes interleaved (restore time not included).
func (c *Checkpoint) RunWall(work sim.Time) sim.Time {
	n := c.count(work)
	wall := work + sim.Time(n)*c.localCost()
	if c.GlobalEvery > 0 {
		wall += sim.Time(n/c.GlobalEvery) * c.GlobalWrite
	}
	return wall
}

// Overhead returns RunWall(work) - work.
func (c *Checkpoint) Overhead(work sim.Time) sim.Time { return c.RunWall(work) - work }

// IOEnergyJ returns the checkpoint/restore I/O energy of io wall time
// spent writing or restoring on nodes nodes: the extra joules the
// resilience layer charges into an energy.Recorder on top of the
// nodes' busy draw.
func (c *Checkpoint) IOEnergyJ(io sim.Time, nodes int) float64 {
	if io <= 0 {
		return 0
	}
	return c.IOWatts * io.Seconds() * float64(nodes)
}

// Progress returns, for a run killed `elapsed` wall time after its
// compute started, the compute progress recoverable after a node
// failure and the cost of restoring it. Saved is 0 (and restore 0)
// when no surviving checkpoint completed in time.
func (c *Checkpoint) Progress(elapsed sim.Time) (saved, restore sim.Time) {
	if elapsed <= 0 {
		return 0, 0
	}
	var t, savedLocal, savedGlobal sim.Time
	for i := 1; ; i++ {
		segEnd := t + c.Interval + c.writeCost(i)
		if segEnd > elapsed {
			break
		}
		done := sim.Time(i) * c.Interval
		savedLocal = done
		if c.GlobalEvery > 0 && i%c.GlobalEvery == 0 {
			savedGlobal = done
		}
		t = segEnd
	}
	if c.Buddy && savedLocal > 0 {
		return savedLocal, c.LocalRestore
	}
	if savedGlobal > 0 {
		return savedGlobal, c.GlobalRestore
	}
	return 0, 0
}

// EffectiveWriteSeconds returns the average per-checkpoint wall cost
// in seconds — the delta to feed YoungInterval/DalyInterval when
// choosing Interval for this model.
func (c *Checkpoint) EffectiveWriteSeconds() float64 {
	w := c.localCost().Seconds()
	if c.GlobalEvery > 0 {
		w += c.GlobalWrite.Seconds() / float64(c.GlobalEvery)
	}
	return w
}

// ExpectedWallSeconds returns the classic first-order expected wall
// time (in seconds) to complete `work` seconds of compute under
// exponential failures with the given MTBF, using this model's
// interval and costs: each interval+write segment is retried under the
// memoryless failure law E[T] = (1/rate)(e^(rate*t) - 1), plus a
// restore per failure. It is the analytic curve the E14 sweep is
// compared against.
func (c *Checkpoint) ExpectedWallSeconds(work, mtbf float64) float64 {
	if mtbf <= 0 {
		return work
	}
	rate := 1 / mtbf
	interval := c.Interval.Seconds()
	restore := c.LocalRestore.Seconds()
	if !c.Buddy {
		restore = c.GlobalRestore.Seconds()
	}
	segment := interval + c.EffectiveWriteSeconds()
	segments := work / interval
	// Expected time per segment attempt cycle, with a restore charged
	// on each failed attempt.
	eSeg := (math.Exp(rate*segment) - 1) / rate
	eFailures := math.Exp(rate*segment) - 1
	return segments * (eSeg + eFailures*restore)
}
