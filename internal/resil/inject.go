package resil

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
)

// NodeTarget receives node fail/repair notifications from an Injector.
// resource.Scheduler implements it; tests use recorders.
type NodeTarget interface {
	NodeFailed(id int)
	NodeRepaired(id int)
}

// LinkTarget receives fabric-link fail/repair notifications.
// fabric.Network implements it.
type LinkTarget interface {
	LinkFailed(id int)
	LinkRepaired(id int)
}

// Faults describes one component class's failure process: lifetime
// until failure and downtime until repair.
type Faults struct {
	TTF Distribution // time to failure (e.g. Exponential{MTBF})
	TTR Distribution // time to repair (e.g. Fixed{30})
}

// Injector generates deterministic fail/repair event streams on a
// sim.Engine. Each component gets its own rng stream (split from the
// seed), so the trace of any one component is independent of event
// interleaving with the others — the whole failure schedule is a pure
// function of (seed, distributions, horizon).
type Injector struct {
	Eng *sim.Engine
	// Horizon bounds failure generation: no new failure is scheduled
	// after this virtual time, so Engine.Run terminates. Repairs of
	// failures that already happened are still delivered past it.
	Horizon sim.Time

	// Counters, for experiment tables.
	NodeFailures uint64
	NodeRepairs  uint64
	LinkFailures uint64
	LinkRepairs  uint64

	// Obs, when non-nil, receives the fault timeline as trace events:
	// an instant per failure and a component-down span per repair, on
	// the fault lane of the per-component thread. Nil is inert.
	Obs *obs.Scope
}

// NewInjector returns an injector generating failures in [0, horizon].
func NewInjector(eng *sim.Engine, horizon sim.Time) *Injector {
	if horizon <= 0 {
		panic(fmt.Sprintf("resil: non-positive horizon %v", horizon))
	}
	return &Injector{Eng: eng, Horizon: horizon}
}

// Nodes starts a fail/repair process for node ids [0, n) against the
// target. Call before Engine.Run. A nil TTF (or n == 0) injects
// nothing: resilience off is the zero-cost default.
func (in *Injector) Nodes(n int, f Faults, seed uint64, t NodeTarget) {
	if n == 0 || f.TTF == nil {
		return
	}
	in.start("node", n, f, seed, t.NodeFailed, t.NodeRepaired, &in.NodeFailures, &in.NodeRepairs)
}

// Links starts a fail/repair process for link ids [0, n) against the
// target, mirroring Nodes.
func (in *Injector) Links(n int, f Faults, seed uint64, t LinkTarget) {
	if n == 0 || f.TTF == nil {
		return
	}
	in.start("link", n, f, seed, t.LinkFailed, t.LinkRepaired, &in.LinkFailures, &in.LinkRepairs)
}

func (in *Injector) start(kind string, n int, f Faults, seed uint64,
	onFail, onRepair func(int), failures, repairs *uint64) {
	if f.TTR == nil {
		panic("resil: Faults with a TTF but no TTR (use Fixed{0} for instant repair)")
	}
	root := rng.New(seed)
	for id := 0; id < n; id++ {
		in.schedule(kind, id, root.Split(), f, onFail, onRepair, failures, repairs)
	}
}

func (in *Injector) schedule(kind string, id int, r *rng.Source, f Faults,
	onFail, onRepair func(int), failures, repairs *uint64) {
	at := in.Eng.Now() + sim.FromSeconds(f.TTF.Sample(r))
	if at > in.Horizon {
		return
	}
	in.Eng.At(at, func() {
		*failures++
		failAt := in.Eng.Now()
		if in.Obs.Enabled() {
			in.Obs.Instant(obs.LaneFaults+id, "fault", kind+"-fail", failAt,
				obs.KV{K: kind, V: id})
		}
		onFail(id)
		down := sim.FromSeconds(f.TTR.Sample(r))
		in.Eng.After(down, func() {
			*repairs++
			if in.Obs.Enabled() {
				in.Obs.Span(obs.LaneFaults+id, "fault", kind+"-down", failAt, in.Eng.Now(),
					obs.KV{K: kind, V: id})
			}
			onRepair(id)
			in.schedule(kind, id, r, f, onFail, onRepair, failures, repairs)
		})
	})
}
