package topology

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestTorusCoordRoundTrip(t *testing.T) {
	tor := NewTorus3D(3, 4, 5)
	for i := 0; i < tor.Nodes(); i++ {
		x, y, z := tor.Coord(NodeID(i))
		if got := tor.ID(x, y, z); got != NodeID(i) {
			t.Fatalf("coord round trip %d -> (%d,%d,%d) -> %d", i, x, y, z, got)
		}
	}
}

func TestTorusSelfRoute(t *testing.T) {
	tor := NewTorus3D(4, 4, 4)
	if r := tor.Route(5, 5); len(r) != 0 {
		t.Fatalf("self route not empty: %v", r)
	}
}

func TestTorusNeighbourIsOneHop(t *testing.T) {
	tor := NewTorus3D(4, 4, 4)
	src := tor.ID(1, 2, 3)
	for _, dst := range []NodeID{
		tor.ID(2, 2, 3), tor.ID(0, 2, 3),
		tor.ID(1, 3, 3), tor.ID(1, 1, 3),
		tor.ID(1, 2, 0), tor.ID(1, 2, 2),
	} {
		if h := Hops(tor, src, dst); h != 1 {
			t.Fatalf("neighbour %d at %d hops", dst, h)
		}
	}
}

func TestTorusWraparound(t *testing.T) {
	tor := NewTorus3D(8, 1, 1)
	// 0 -> 7 should wrap backwards: 1 hop, not 7.
	if h := Hops(tor, tor.ID(0, 0, 0), tor.ID(7, 0, 0)); h != 1 {
		t.Fatalf("wraparound hops = %d, want 1", h)
	}
	// 0 -> 4 is the antipode: 4 hops either way.
	if h := Hops(tor, tor.ID(0, 0, 0), tor.ID(4, 0, 0)); h != 4 {
		t.Fatalf("antipode hops = %d, want 4", h)
	}
}

func TestTorusDiameter(t *testing.T) {
	tor := NewTorus3D(4, 4, 4)
	// Diameter of a k-ary torus is sum of floor(k_i/2).
	if d := Diameter(tor); d != 6 {
		t.Fatalf("4x4x4 torus diameter = %d, want 6", d)
	}
	tor2 := NewTorus3D(2, 3, 5)
	if d := Diameter(tor2); d != 1+1+2 {
		t.Fatalf("2x3x5 torus diameter = %d, want 4", d)
	}
}

// TestTorusRouteConnectivity verifies, property-style, that following
// the returned links really leads from src to dst.
func TestTorusRouteConnectivity(t *testing.T) {
	tor := NewTorus3D(3, 4, 2)
	n := tor.Nodes()
	check := func(s8, d8 uint8) bool {
		src := NodeID(int(s8) % n)
		dst := NodeID(int(d8) % n)
		cur := src
		for _, l := range tor.Route(src, dst) {
			from, to := tor.LinkEndpoints(l)
			if from != cur {
				return false
			}
			cur = to
		}
		return cur == dst
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTorusRouteIsMinimal(t *testing.T) {
	tor := NewTorus3D(5, 4, 3)
	r := rng.New(7)
	for i := 0; i < 200; i++ {
		src := NodeID(r.Intn(tor.Nodes()))
		dst := NodeID(r.Intn(tor.Nodes()))
		sx, sy, sz := tor.Coord(src)
		dx, dy, dz := tor.Coord(dst)
		want := abs(step(sx, dx, 5)) + abs(step(sy, dy, 4)) + abs(step(sz, dz, 3))
		if got := Hops(tor, src, dst); got != want {
			t.Fatalf("route %d->%d has %d hops, want %d", src, dst, got, want)
		}
	}
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

func TestTorusDimensionOrdered(t *testing.T) {
	tor := NewTorus3D(4, 4, 4)
	src, dst := tor.ID(0, 0, 0), tor.ID(2, 2, 2)
	route := tor.Route(src, dst)
	// Links must be grouped X, then Y, then Z.
	phase := 0
	for _, l := range route {
		d := int(l) % 6
		var p int
		switch d {
		case DirXPlus, DirXMinus:
			p = 0
		case DirYPlus, DirYMinus:
			p = 1
		default:
			p = 2
		}
		if p < phase {
			t.Fatalf("route not dimension ordered: %v", route)
		}
		phase = p
	}
}

func TestTorusBisection(t *testing.T) {
	if got := NewTorus3D(4, 4, 4).BisectionLinks(); got != 64 {
		t.Fatalf("4x4x4 bisection links = %d, want 64", got)
	}
	if got := NewTorus3D(2, 4, 4).BisectionLinks(); got != 32 {
		t.Fatalf("2x4x4 bisection links = %d, want 32", got)
	}
	if got := NewTorus3D(1, 4, 4).BisectionLinks(); got != 0 {
		t.Fatalf("1x4x4 bisection links = %d, want 0", got)
	}
}

func TestFatTreeRoutes(t *testing.T) {
	ft := NewFatTree(4, 3, 4) // 12 nodes
	// Same node.
	if r := ft.Route(0, 0); len(r) != 0 {
		t.Fatalf("self route: %v", r)
	}
	// Same leaf: 2 hops.
	if h := Hops(ft, 0, 1); h != 2 {
		t.Fatalf("same-leaf hops = %d, want 2", h)
	}
	// Different leaf: 4 hops.
	if h := Hops(ft, 0, 11); h != 4 {
		t.Fatalf("cross-leaf hops = %d, want 4", h)
	}
}

func TestFatTreeLeaf(t *testing.T) {
	ft := NewFatTree(4, 3, 2)
	for i := 0; i < ft.Nodes(); i++ {
		if got, want := ft.Leaf(NodeID(i)), i/4; got != want {
			t.Fatalf("leaf(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestFatTreeLinkIDsDisjoint(t *testing.T) {
	ft := NewFatTree(2, 4, 3)
	seen := map[LinkID]bool{}
	reg := func(l LinkID) {
		if int(l) < 0 || int(l) >= ft.Links() {
			t.Fatalf("link %d out of range [0,%d)", l, ft.Links())
		}
		seen[l] = true
	}
	for s := 0; s < ft.Nodes(); s++ {
		for d := 0; d < ft.Nodes(); d++ {
			for _, l := range ft.Route(NodeID(s), NodeID(d)) {
				reg(l)
			}
		}
	}
	// Every node link must appear; spine links only those selected by
	// the deterministic spreading.
	if len(seen) < 2*ft.Nodes() {
		t.Fatalf("only %d distinct links used", len(seen))
	}
}

func TestFatTreeSpineSpreading(t *testing.T) {
	ft := NewFatTree(1, 4, 4)
	// Destinations on different leaves should use different spines.
	spines := map[LinkID]bool{}
	for d := 1; d < 4; d++ {
		route := ft.Route(0, NodeID(d))
		if len(route) != 4 {
			t.Fatalf("route length %d", len(route))
		}
		spines[route[1]] = true
	}
	if len(spines) < 2 {
		t.Fatalf("no spine spreading: %v", spines)
	}
}

func TestCrossbar(t *testing.T) {
	cb := NewCrossbar(8)
	if h := Hops(cb, 2, 5); h != 2 {
		t.Fatalf("crossbar hops = %d, want 2", h)
	}
	if r := cb.Route(3, 3); len(r) != 0 {
		t.Fatalf("self route: %v", r)
	}
	if d := Diameter(cb); d != 2 {
		t.Fatalf("crossbar diameter = %d", d)
	}
}

func TestAvgHopsTorusVsCrossbar(t *testing.T) {
	tor := NewTorus3D(4, 4, 4)
	cb := NewCrossbar(64)
	if AvgHops(tor) <= AvgHops(cb) {
		t.Fatalf("torus avg hops %.2f should exceed crossbar %.2f",
			AvgHops(tor), AvgHops(cb))
	}
}

func TestValidatePanics(t *testing.T) {
	tor := NewTorus3D(2, 2, 2)
	for _, fn := range []func(){
		func() { tor.Route(-1, 0) },
		func() { tor.Route(0, 99) },
		func() { tor.Coord(8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range node")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkTorusRoute(b *testing.B) {
	tor := NewTorus3D(8, 8, 8)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := NodeID(r.Intn(512))
		dst := NodeID(r.Intn(512))
		_ = tor.Route(src, dst)
	}
}
