package topology

import "testing"

// FuzzTorusRoute checks the torus routing invariants for arbitrary
// shapes and endpoints: every route stays in bounds, walks the fabric
// link-by-link from src to dst, respects dimension order (all X moves,
// then Y, then Z, each dimension in one direction), and agrees with
// the allocation-free hop counter.
func FuzzTorusRoute(f *testing.F) {
	f.Add(uint8(4), uint8(4), uint8(4), uint16(0), uint16(63))
	f.Add(uint8(1), uint8(1), uint8(1), uint16(0), uint16(0))
	f.Add(uint8(2), uint8(3), uint8(5), uint16(7), uint16(29))
	f.Add(uint8(8), uint8(1), uint8(1), uint16(0), uint16(4))
	f.Add(uint8(3), uint8(3), uint8(3), uint16(26), uint16(0))
	f.Fuzz(func(t *testing.T, x, y, z uint8, srcRaw, dstRaw uint16) {
		tor := NewTorus3D(int(x%8)+1, int(y%8)+1, int(z%8)+1)
		n := tor.Nodes()
		src := NodeID(int(srcRaw) % n)
		dst := NodeID(int(dstRaw) % n)
		route := tor.Route(src, dst)
		if src == dst && len(route) != 0 {
			t.Fatalf("loopback route not empty: %v", route)
		}
		if got, want := len(route), tor.Hops(src, dst); got != want {
			t.Fatalf("route length %d != hops %d", got, want)
		}
		cur := src
		lastClass := -1
		dimDir := map[int]int{}
		for i, l := range route {
			if int(l) < 0 || int(l) >= tor.Links() {
				t.Fatalf("link %d out of bounds [0,%d)", l, tor.Links())
			}
			from, to := tor.LinkEndpoints(l)
			if from != cur {
				t.Fatalf("hop %d starts at %d, expected %d", i, from, cur)
			}
			dir := int(l) % 6
			class := dir / 2 // 0=X, 1=Y, 2=Z
			if class < lastClass {
				t.Fatalf("hop %d violates dimension order: class %d after %d", i, class, lastClass)
			}
			if prev, ok := dimDir[class]; ok && prev != dir {
				t.Fatalf("hop %d reverses direction within dimension %d", i, class)
			}
			dimDir[class] = dir
			lastClass = class
			cur = to
		}
		if cur != dst {
			t.Fatalf("route ends at %d, want %d", cur, dst)
		}
	})
}

// FuzzFatTreeRoute checks the fat-tree routing invariants: routes are
// in bounds, have the up/down shape (2 links within a leaf, 4 across
// spines), traverse distinct links, and agree with the hop counter.
func FuzzFatTreeRoute(f *testing.F) {
	f.Add(uint8(16), uint8(2), uint8(8), uint16(0), uint16(17))
	f.Add(uint8(1), uint8(1), uint8(1), uint16(0), uint16(0))
	f.Add(uint8(4), uint8(4), uint8(2), uint16(3), uint16(5))
	f.Fuzz(func(t *testing.T, nplRaw, leavesRaw, spinesRaw uint8, srcRaw, dstRaw uint16) {
		ft := NewFatTree(int(nplRaw%16)+1, int(leavesRaw%8)+1, int(spinesRaw%8)+1)
		n := ft.Nodes()
		src := NodeID(int(srcRaw) % n)
		dst := NodeID(int(dstRaw) % n)
		route := ft.Route(src, dst)
		if got, want := len(route), ft.Hops(src, dst); got != want {
			t.Fatalf("route length %d != hops %d", got, want)
		}
		seen := map[LinkID]bool{}
		for _, l := range route {
			if int(l) < 0 || int(l) >= ft.Links() {
				t.Fatalf("link %d out of bounds [0,%d)", l, ft.Links())
			}
			if seen[l] {
				t.Fatalf("route repeats link %d: %v", l, route)
			}
			seen[l] = true
		}
		switch {
		case src == dst:
			if len(route) != 0 {
				t.Fatalf("loopback route not empty: %v", route)
			}
		case ft.Leaf(src) == ft.Leaf(dst):
			if len(route) != 2 {
				t.Fatalf("intra-leaf route has %d links", len(route))
			}
			if route[0] != LinkID(2*int(src)) || route[1] != LinkID(2*int(dst)+1) {
				t.Fatalf("intra-leaf route malformed: %v", route)
			}
		default:
			if len(route) != 4 {
				t.Fatalf("cross-leaf route has %d links", len(route))
			}
			if route[0] != LinkID(2*int(src)) || route[3] != LinkID(2*int(dst)+1) {
				t.Fatalf("cross-leaf route endpoints malformed: %v", route)
			}
			// The middle links must traverse one spine: an up link from
			// the source leaf and a down link into the destination leaf,
			// both via the same spine switch.
			base := 2 * ft.Nodes()
			up, down := int(route[1])-base, int(route[2])-base
			if up < 0 || up%2 != 0 || down < 1 || down%2 != 1 {
				t.Fatalf("spine links malformed: %v", route)
			}
			upLeaf, upSpine := up/2/ft.Spines, up/2%ft.Spines
			downLeaf, downSpine := (down-1)/2/ft.Spines, (down-1)/2%ft.Spines
			if upLeaf != ft.Leaf(src) || downLeaf != ft.Leaf(dst) || upSpine != downSpine {
				t.Fatalf("spine traversal mismatched: %v", route)
			}
		}
	})
}
