package topology

import "fmt"

// FatTree is a two-level fat tree (leaf/spine), the shape of the
// InfiniBand fabric on the DEEP Cluster side. Nodes attach to leaf
// switches; every leaf connects to every spine. Routing is the usual
// up/down: up to a deterministically chosen spine (hash of the
// destination, giving static load spreading like IB's LMC-based
// multipathing), then down to the destination's leaf.
//
// Link numbering (all unidirectional):
//
//	node n up-link            -> link 2n
//	node n down-link          -> link 2n+1 (leaf->node)
//	leaf l to spine s up      -> nodeLinks + 2*(l*spines+s)
//	spine s to leaf l down    -> nodeLinks + 2*(l*spines+s) + 1
type FatTree struct {
	NodesPerLeaf int
	Leaves       int
	Spines       int

	// name memoizes Name(); see Torus3D.
	name string
}

// NewFatTree builds a fat tree with the given shape. A Spines count
// equal to NodesPerLeaf gives full bisection bandwidth;
// fewer spines model oversubscription.
func NewFatTree(nodesPerLeaf, leaves, spines int) *FatTree {
	if nodesPerLeaf < 1 || leaves < 1 || spines < 1 {
		panic(fmt.Sprintf("topology: invalid fat tree %d/%d/%d", nodesPerLeaf, leaves, spines))
	}
	return &FatTree{
		NodesPerLeaf: nodesPerLeaf, Leaves: leaves, Spines: spines,
		name: fmt.Sprintf("fattree-%dx%d-s%d", nodesPerLeaf, leaves, spines),
	}
}

// Name implements Topology.
func (f *FatTree) Name() string {
	if f.name == "" {
		f.name = fmt.Sprintf("fattree-%dx%d-s%d", f.NodesPerLeaf, f.Leaves, f.Spines)
	}
	return f.name
}

// Nodes implements Topology.
func (f *FatTree) Nodes() int { return f.NodesPerLeaf * f.Leaves }

// Links implements Topology.
func (f *FatTree) Links() int { return 2*f.Nodes() + 2*f.Leaves*f.Spines }

// Leaf returns the leaf switch index of node id.
func (f *FatTree) Leaf(id NodeID) int {
	validateNode(id, f.Nodes(), f.Name())
	return int(id) / f.NodesPerLeaf
}

func (f *FatTree) nodeUp(id NodeID) LinkID   { return LinkID(2 * int(id)) }
func (f *FatTree) nodeDown(id NodeID) LinkID { return LinkID(2*int(id) + 1) }

func (f *FatTree) leafToSpine(leaf, spine int) LinkID {
	return LinkID(2*f.Nodes() + 2*(leaf*f.Spines+spine))
}

func (f *FatTree) spineToLeaf(leaf, spine int) LinkID {
	return LinkID(2*f.Nodes() + 2*(leaf*f.Spines+spine) + 1)
}

// spineFor deterministically spreads destination traffic over spines.
func (f *FatTree) spineFor(dst NodeID) int { return int(dst) % f.Spines }

// LinkOwner anchors every link to a node for spatial partitioning: a
// node's up and down links anchor to the node itself, and a leaf's
// switch links (to and from every spine) anchor to the leaf's first
// node. With partition bounds aligned to leaf boundaries every route
// therefore splits between the two endpoint domains — the first half
// (node up-link, leaf-to-spine) is owned by the source's domain, the
// second half (spine-to-leaf, node down-link) by the destination's —
// so a route is domain-local exactly when its endpoints share a
// domain.
func (f *FatTree) LinkOwner(l LinkID) NodeID {
	if int(l) < 0 || int(l) >= f.Links() {
		panic(fmt.Sprintf("topology: link %d out of range [0,%d) in %s", l, f.Links(), f.Name()))
	}
	if int(l) < 2*f.Nodes() {
		return NodeID(int(l) / 2)
	}
	leaf := (int(l) - 2*f.Nodes()) / (2 * f.Spines)
	return NodeID(leaf * f.NodesPerLeaf)
}

// Route implements Topology.
func (f *FatTree) Route(src, dst NodeID) []LinkID {
	validateNode(src, f.Nodes(), f.Name())
	validateNode(dst, f.Nodes(), f.Name())
	if src == dst {
		return nil
	}
	sl, dl := f.Leaf(src), f.Leaf(dst)
	if sl == dl {
		// Same leaf: up to the leaf switch, straight back down.
		return []LinkID{f.nodeUp(src), f.nodeDown(dst)}
	}
	sp := f.spineFor(dst)
	return []LinkID{
		f.nodeUp(src),
		f.leafToSpine(sl, sp),
		f.spineToLeaf(dl, sp),
		f.nodeDown(dst),
	}
}

// Hops implements HopCounter: 2 links within a leaf, 4 across spines.
func (f *FatTree) Hops(src, dst NodeID) int {
	validateNode(src, f.Nodes(), f.Name())
	validateNode(dst, f.Nodes(), f.Name())
	switch {
	case src == dst:
		return 0
	case f.Leaf(src) == f.Leaf(dst):
		return 2
	default:
		return 4
	}
}

// Crossbar is a single non-blocking switch: every pair of nodes is two
// hops apart (in via the source port, out via the destination port).
// It models a PCIe switch / host bus fanout where the shared medium is
// captured at the fabric layer by the port links themselves.
type Crossbar struct {
	N int

	// name memoizes Name(); see Torus3D.
	name string
}

// NewCrossbar returns an n-port crossbar.
func NewCrossbar(n int) *Crossbar {
	if n < 1 {
		panic(fmt.Sprintf("topology: invalid crossbar size %d", n))
	}
	return &Crossbar{N: n, name: fmt.Sprintf("crossbar-%d", n)}
}

// Name implements Topology.
func (c *Crossbar) Name() string {
	if c.name == "" {
		c.name = fmt.Sprintf("crossbar-%d", c.N)
	}
	return c.name
}

// Nodes implements Topology.
func (c *Crossbar) Nodes() int { return c.N }

// Links implements Topology: one ingress and one egress link per node.
func (c *Crossbar) Links() int { return 2 * c.N }

// Route implements Topology: source egress port, destination ingress
// port.
func (c *Crossbar) Route(src, dst NodeID) []LinkID {
	validateNode(src, c.N, c.Name())
	validateNode(dst, c.N, c.Name())
	if src == dst {
		return nil
	}
	return []LinkID{LinkID(2 * int(src)), LinkID(2*int(dst) + 1)}
}

// Hops implements HopCounter.
func (c *Crossbar) Hops(src, dst NodeID) int {
	validateNode(src, c.N, c.Name())
	validateNode(dst, c.N, c.Name())
	if src == dst {
		return 0
	}
	return 2
}
