// Package topology models the interconnect topologies of the DEEP
// system: the EXTOLL 3D torus of the Booster, the InfiniBand fat tree
// of the Cluster, and a flat crossbar used for PCIe-style buses.
//
// A Topology enumerates nodes (compute endpoints) and provides routing:
// the ordered list of links a packet traverses from one node to
// another. Links are identified by small dense integers so the fabric
// layer can keep per-link state in slices.
package topology

import "fmt"

// NodeID identifies a compute endpoint within one topology.
type NodeID int

// LinkID identifies a unidirectional link within one topology.
type LinkID int

// Topology describes a network graph with deterministic routing.
type Topology interface {
	// Nodes returns the number of endpoints.
	Nodes() int
	// Links returns the number of unidirectional links.
	Links() int
	// Route returns the sequence of links a packet takes from src to
	// dst. An empty route means src == dst (loopback).
	Route(src, dst NodeID) []LinkID
	// Name returns a short diagnostic name, e.g. "torus3d-4x4x4".
	Name() string
}

// NodeMajorLinks is implemented by topologies whose link identifiers
// are node-major: link IDs of node n occupy [n*LinkDegree(),
// (n+1)*LinkDegree()), owned by the node the link leaves from. The
// fabric's spatial domain decomposition relies on it to give each
// domain a contiguous link range.
type NodeMajorLinks interface {
	LinkDegree() int
}

// LinkOwner is implemented by topologies that can anchor every link to
// a source node even though their link identifiers are not node-major.
// The fabric's spatial domain decomposition uses the anchor to assign
// each link to the domain owning that node; switch-level links should
// anchor to the first node below the switch, so that partition bounds
// aligned to switch boundaries keep each route's links inside the two
// endpoint domains.
type LinkOwner interface {
	LinkOwner(l LinkID) NodeID
}

// HopCounter is implemented by topologies that can count route hops
// without materializing the route. Cost-model transports (cbp, mpi)
// query hop counts once per message, so the allocation-free path
// matters at scale.
type HopCounter interface {
	Hops(src, dst NodeID) int
}

// Hops returns the number of links on the route from src to dst.
func Hops(t Topology, src, dst NodeID) int {
	if hc, ok := t.(HopCounter); ok {
		return hc.Hops(src, dst)
	}
	return len(t.Route(src, dst))
}

// Diameter returns the maximum hop count over all node pairs. It is
// O(n^2 * route) and intended for tests and small analysis runs.
func Diameter(t Topology) int {
	max := 0
	n := t.Nodes()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if h := Hops(t, NodeID(s), NodeID(d)); h > max {
				max = h
			}
		}
	}
	return max
}

// AvgHops returns the mean hop count over all ordered pairs of
// distinct nodes.
func AvgHops(t Topology) float64 {
	n := t.Nodes()
	if n < 2 {
		return 0
	}
	total := 0
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				total += Hops(t, NodeID(s), NodeID(d))
			}
		}
	}
	return float64(total) / float64(n*(n-1))
}

// validateNode panics when id is outside [0, n); routing with a bad
// endpoint is always a caller bug.
func validateNode(id NodeID, n int, topo string) {
	if int(id) < 0 || int(id) >= n {
		panic(fmt.Sprintf("topology: node %d out of range [0,%d) in %s", id, n, topo))
	}
}
