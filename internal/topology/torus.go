package topology

import "fmt"

// Torus3D is a 3-dimensional torus with dimension-ordered routing
// (X, then Y, then Z), matching the 6-link EXTOLL NIC described in the
// paper. Each node owns 6 outgoing links: +X, -X, +Y, -Y, +Z, -Z, in
// that order, so link IDs are node*6 + direction.
type Torus3D struct {
	X, Y, Z int

	// name memoizes Name(): the routing validators pass it on every
	// call, and rendering it each time dominated 100k-node sweeps.
	name string
}

// Direction indices for a node's six torus links.
const (
	DirXPlus = iota
	DirXMinus
	DirYPlus
	DirYMinus
	DirZPlus
	DirZMinus
	torusDegree
)

// NewTorus3D returns an X x Y x Z torus. All dimensions must be >= 1.
func NewTorus3D(x, y, z int) *Torus3D {
	if x < 1 || y < 1 || z < 1 {
		panic(fmt.Sprintf("topology: invalid torus %dx%dx%d", x, y, z))
	}
	return &Torus3D{X: x, Y: y, Z: z, name: fmt.Sprintf("torus3d-%dx%dx%d", x, y, z)}
}

// Name implements Topology.
func (t *Torus3D) Name() string {
	if t.name == "" {
		t.name = fmt.Sprintf("torus3d-%dx%dx%d", t.X, t.Y, t.Z)
	}
	return t.name
}

// Nodes implements Topology.
func (t *Torus3D) Nodes() int { return t.X * t.Y * t.Z }

// Links implements Topology. Every node has six outgoing links even in
// degenerate dimensions; unused links are simply never routed over.
func (t *Torus3D) Links() int { return t.Nodes() * torusDegree }

// LinkDegree implements NodeMajorLinks: node n owns links
// [n*6, (n+1)*6).
func (t *Torus3D) LinkDegree() int { return torusDegree }

// Coord returns the (x, y, z) coordinates of node id.
func (t *Torus3D) Coord(id NodeID) (x, y, z int) {
	validateNode(id, t.Nodes(), t.Name())
	n := int(id)
	x = n % t.X
	y = (n / t.X) % t.Y
	z = n / (t.X * t.Y)
	return
}

// ID returns the node at coordinates (x, y, z), taken modulo each
// dimension so callers can address neighbours without wrapping
// manually.
func (t *Torus3D) ID(x, y, z int) NodeID {
	x = mod(x, t.X)
	y = mod(y, t.Y)
	z = mod(z, t.Z)
	return NodeID(x + y*t.X + z*t.X*t.Y)
}

func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// linkFrom returns the link ID of node's outgoing link in direction d.
func (t *Torus3D) linkFrom(node NodeID, d int) LinkID {
	return LinkID(int(node)*torusDegree + d)
}

// step returns the shortest signed step count from a to b in a ring of
// size m, preferring the positive direction on ties (deterministic).
func step(a, b, m int) int {
	fwd := mod(b-a, m)
	bwd := fwd - m // negative
	if fwd <= -bwd {
		return fwd
	}
	return bwd
}

// Route implements Topology using dimension-ordered shortest-path
// routing: resolve X displacement first, then Y, then Z. Deterministic
// and deadlock-free (the property EXTOLL's hardware routing relies on).
func (t *Torus3D) Route(src, dst NodeID) []LinkID {
	validateNode(src, t.Nodes(), t.Name())
	validateNode(dst, t.Nodes(), t.Name())
	if src == dst {
		return nil
	}
	sx, sy, sz := t.Coord(src)
	dx, dy, dz := t.Coord(dst)
	var route []LinkID
	cx, cy, cz := sx, sy, sz
	walk := func(cur *int, target, size, plus, minus int, coord func() NodeID) {
		s := step(*cur, target, size)
		for s != 0 {
			dir := plus
			inc := 1
			if s < 0 {
				dir = minus
				inc = -1
			}
			route = append(route, t.linkFrom(coord(), dir))
			*cur = mod(*cur+inc, size)
			s -= inc
		}
	}
	walk(&cx, dx, t.X, DirXPlus, DirXMinus, func() NodeID { return t.ID(cx, cy, cz) })
	walk(&cy, dy, t.Y, DirYPlus, DirYMinus, func() NodeID { return t.ID(cx, cy, cz) })
	walk(&cz, dz, t.Z, DirZPlus, DirZMinus, func() NodeID { return t.ID(cx, cy, cz) })
	return route
}

// Hops implements HopCounter: the dimension-ordered route length is
// the sum of the per-dimension shortest ring distances, computed
// without materializing the route.
func (t *Torus3D) Hops(src, dst NodeID) int {
	validateNode(src, t.Nodes(), t.Name())
	validateNode(dst, t.Nodes(), t.Name())
	sx, sy, sz := t.Coord(src)
	dx, dy, dz := t.Coord(dst)
	return absStep(step(sx, dx, t.X)) + absStep(step(sy, dy, t.Y)) + absStep(step(sz, dz, t.Z))
}

func absStep(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// LinkEndpoints returns the (from, to) nodes of link l, for diagnostics
// and contention analysis.
func (t *Torus3D) LinkEndpoints(l LinkID) (from, to NodeID) {
	from = NodeID(int(l) / torusDegree)
	d := int(l) % torusDegree
	x, y, z := t.Coord(from)
	switch d {
	case DirXPlus:
		to = t.ID(x+1, y, z)
	case DirXMinus:
		to = t.ID(x-1, y, z)
	case DirYPlus:
		to = t.ID(x, y+1, z)
	case DirYMinus:
		to = t.ID(x, y-1, z)
	case DirZPlus:
		to = t.ID(x, y, z+1)
	case DirZMinus:
		to = t.ID(x, y, z-1)
	}
	return
}

// BisectionLinks returns the number of unidirectional links crossing
// the X-midplane bisection, a proxy for bisection bandwidth.
func (t *Torus3D) BisectionLinks() int {
	if t.X < 2 {
		return 0
	}
	// Each YZ-plane column contributes wrap and midplane crossings in
	// both directions: 2 cut points x 2 directions when X > 2, else 1
	// cut (the single pair of opposing links counted once per node).
	cuts := 2
	if t.X == 2 {
		cuts = 1
	}
	return t.Y * t.Z * cuts * 2
}
