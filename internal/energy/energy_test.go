package energy

import (
	"math"
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

func TestMeterBasics(t *testing.T) {
	m := NewMeter()
	m.AddGroup("cluster", machine.Xeon, 2)
	m.Phase("cluster", 10*sim.Second, 1.0, 1e12)
	wantJ := machine.Xeon.PeakWatts * 2 * 10
	if got := m.Joules(); math.Abs(got-wantJ) > 1e-6*wantJ {
		t.Fatalf("joules = %v, want %v", got, wantJ)
	}
	if got := m.Flops(); got != 1e12 {
		t.Fatalf("flops = %v", got)
	}
	want := 1e12 / wantJ / 1e9
	if got := m.GFlopsPerWatt(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("GFlop/W = %v, want %v", got, want)
	}
}

func TestIdlePhaseBurnsEnergyWithoutFlops(t *testing.T) {
	m := NewMeter()
	m.AddGroup("booster", machine.KNC, 4)
	m.Phase("booster", 5*sim.Second, 0, 0)
	wantJ := machine.KNC.IdleWatts * 4 * 5
	if got := m.Joules(); math.Abs(got-wantJ) > 1e-9*wantJ {
		t.Fatalf("idle joules = %v, want %v", got, wantJ)
	}
	if m.GFlopsPerWatt() != 0 {
		t.Fatal("efficiency should be zero with zero flops")
	}
	g := m.Group("booster")
	if g.BusyFraction() != 0 {
		t.Fatalf("busy fraction %v", g.BusyFraction())
	}
}

func TestBusyFraction(t *testing.T) {
	m := NewMeter()
	g := m.AddGroup("x", machine.Xeon, 1)
	m.Phase("x", 3*sim.Second, 1, 1)
	m.Phase("x", 1*sim.Second, 0, 0)
	if got := g.BusyFraction(); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("busy fraction %v, want 0.75", got)
	}
}

func TestUnknownGroupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown group")
		}
	}()
	NewMeter().Phase("nope", sim.Second, 1, 0)
}

func TestNegativeDurationPanics(t *testing.T) {
	m := NewMeter()
	m.AddGroup("g", machine.Xeon, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative duration")
		}
	}()
	m.Phase("g", -sim.Second, 1, 0)
}

func TestGroupNamesSorted(t *testing.T) {
	m := NewMeter()
	m.AddGroup("zeta", machine.Xeon, 1)
	m.AddGroup("alpha", machine.KNC, 1)
	names := m.GroupNames()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("names = %v", names)
	}
}

func TestBoosterBeatsClusterEfficiency(t *testing.T) {
	// Same work on each platform at peak: the booster meter must report
	// higher GFlop/W — the claim the energy experiment reproduces.
	work := 1e13
	cluster := NewMeter()
	cluster.AddGroup("c", machine.Xeon, 1)
	tc := work / (machine.Xeon.PeakGFlops * 1e9)
	cluster.Phase("c", sim.FromSeconds(tc), 1, work)

	booster := NewMeter()
	booster.AddGroup("b", machine.KNC, 1)
	tb := work / (machine.KNC.PeakGFlops * 1e9)
	booster.Phase("b", sim.FromSeconds(tb), 1, work)

	if booster.GFlopsPerWatt() <= cluster.GFlopsPerWatt() {
		t.Fatalf("booster %.2f <= cluster %.2f GFlop/W",
			booster.GFlopsPerWatt(), cluster.GFlopsPerWatt())
	}
}
