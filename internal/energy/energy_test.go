package energy

import (
	"math"
	"sync"
	"testing"

	"repro/internal/machine"
	"repro/internal/rng"
	"repro/internal/sim"
)

// advance moves the engine clock to t through an empty event.
func advance(eng *sim.Engine, t sim.Time) {
	eng.At(t, func() {})
	eng.Run()
}

func TestRecorderBusyIdleIntegration(t *testing.T) {
	eng := sim.New()
	rec := NewRecorder(eng)
	g := rec.MustAddGroup("cluster", machine.Xeon, 2)
	g.Transition(2, machine.PowerIdle, machine.PowerBusy)
	g.AddFlops(1e12)
	advance(eng, 10*sim.Second)
	wantJ := machine.Xeon.PeakWatts * 2 * 10
	if got := rec.Joules(); math.Abs(got-wantJ) > 1e-6*wantJ {
		t.Fatalf("joules = %v, want %v", got, wantJ)
	}
	if got := rec.Flops(); got != 1e12 {
		t.Fatalf("flops = %v", got)
	}
	want := 1e12 / wantJ / 1e9
	if got := rec.GFlopsPerWatt(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("GFlop/W = %v, want %v", got, want)
	}
}

func TestIdleOccupancyBurnsEnergyWithoutFlops(t *testing.T) {
	eng := sim.New()
	rec := NewRecorder(eng)
	g := rec.MustAddGroup("booster", machine.KNC, 4)
	advance(eng, 5*sim.Second)
	wantJ := machine.KNC.IdleWatts * 4 * 5
	if got := rec.Joules(); math.Abs(got-wantJ) > 1e-9*wantJ {
		t.Fatalf("idle joules = %v, want %v", got, wantJ)
	}
	if rec.GFlopsPerWatt() != 0 {
		t.Fatal("efficiency should be zero with zero flops")
	}
	if g.BusyFraction() != 0 {
		t.Fatalf("busy fraction %v", g.BusyFraction())
	}
}

func TestSleepStateDrawsSleepWatts(t *testing.T) {
	eng := sim.New()
	rec := NewRecorder(eng)
	g := rec.MustAddGroup("b", machine.KNC, 8)
	g.Transition(8, machine.PowerIdle, machine.PowerSleep)
	advance(eng, 3*sim.Second)
	wantJ := machine.KNC.SleepWatts * 8 * 3
	if got := rec.Joules(); math.Abs(got-wantJ) > 1e-9*wantJ {
		t.Fatalf("sleep joules = %v, want %v", got, wantJ)
	}
	if got := g.StateNodeSeconds(machine.PowerSleep); math.Abs(got-24) > 1e-9 {
		t.Fatalf("sleep node-seconds = %v, want 24", got)
	}
}

func TestBusyUtilisationInterpolates(t *testing.T) {
	eng := sim.New()
	rec := NewRecorder(eng)
	g := rec.MustAddGroup("c", machine.Xeon, 16)
	g.SetBusyUtilisation(1.0 / 16)
	g.Transition(16, machine.PowerIdle, machine.PowerBusy)
	advance(eng, 4*sim.Second)
	wantJ := machine.Xeon.Power(1.0/16) * 16 * 4
	if got := rec.Joules(); math.Abs(got-wantJ) > 1e-9*wantJ {
		t.Fatalf("joules = %v, want %v (Phase-compatible utilisation draw)", got, wantJ)
	}
}

func TestDuplicateGroupIsAnError(t *testing.T) {
	rec := NewRecorder(sim.New())
	if _, err := rec.AddGroup("b", machine.KNC, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := rec.AddGroup("b", machine.Xeon, 2); err == nil {
		t.Fatal("re-adding an existing group must be an error, not a silent replace")
	}
	// The original registration survives the rejected re-add.
	g := rec.Group("b")
	if g.Count != 4 || g.Model.Kind != machine.BoosterNode {
		t.Fatalf("group mutated by rejected re-add: %+v", g)
	}
}

func TestNonPositiveCountIsAnError(t *testing.T) {
	rec := NewRecorder(sim.New())
	if _, err := rec.AddGroup("z", machine.KNC, 0); err == nil {
		t.Fatal("zero-node group must be rejected")
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var rec *Recorder
	g, err := rec.AddGroup("x", machine.Xeon, 4)
	if g != nil || err != nil {
		t.Fatalf("nil recorder AddGroup = (%v, %v)", g, err)
	}
	rec.Charge("fabric", 10)
	rec.Freeze()
	g.Transition(1, machine.PowerIdle, machine.PowerBusy)
	g.AddFlops(1)
	g.SetBusyUtilisation(0.5)
	if rec.Joules() != 0 || rec.Flops() != 0 || rec.GFlopsPerWatt() != 0 {
		t.Fatal("nil recorder accumulated energy")
	}
	if g.Joules() != 0 || g.BusyFraction() != 0 || g.InState(machine.PowerBusy) != 0 {
		t.Fatal("nil group accumulated state")
	}
	if rec.GroupNames() != nil || rec.ChargeNames() != nil {
		t.Fatal("nil recorder has names")
	}
}

func TestChargesAccumulateByName(t *testing.T) {
	rec := NewRecorder(sim.New())
	rec.Charge("fabric", 2.5)
	rec.Charge("checkpoint-io", 1.0)
	rec.Charge("fabric", 0.5)
	if got := rec.ChargeJoules("fabric"); got != 3.0 {
		t.Fatalf("fabric charge = %v", got)
	}
	if got := rec.Joules(); got != 4.0 {
		t.Fatalf("total = %v", got)
	}
	names := rec.ChargeNames()
	if len(names) != 2 || names[0] != "checkpoint-io" || names[1] != "fabric" {
		t.Fatalf("charge names = %v", names)
	}
}

func TestOverdrawnTransitionPanics(t *testing.T) {
	eng := sim.New()
	rec := NewRecorder(eng)
	g := rec.MustAddGroup("g", machine.KNC, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic moving more nodes than the state holds")
		}
	}()
	g.Transition(3, machine.PowerIdle, machine.PowerBusy)
}

func TestFreezeCapsAccumulation(t *testing.T) {
	eng := sim.New()
	rec := NewRecorder(eng)
	g := rec.MustAddGroup("b", machine.KNC, 4)
	g.Transition(4, machine.PowerIdle, machine.PowerBusy)
	eng.At(2*sim.Second, func() { rec.Freeze() })
	eng.At(10*sim.Second, func() {
		// Post-freeze activity moves occupancy but adds no joules.
		g.Transition(4, machine.PowerBusy, machine.PowerIdle)
		rec.Charge("fabric", 99)
	})
	eng.Run()
	want := 4 * machine.KNC.PeakWatts * 2
	if got := rec.Joules(); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("frozen joules = %v, want %v (2 s of busy draw only)", got, want)
	}
	if g.InState(machine.PowerIdle) != 4 {
		t.Fatal("post-freeze transition lost")
	}
}

func TestBoosterBeatsClusterEfficiency(t *testing.T) {
	// Same work on each platform at peak: the booster recorder must
	// report higher GFlop/W — the claim the energy experiments
	// reproduce.
	work := 1e13
	run := func(m machine.NodeModel) float64 {
		eng := sim.New()
		rec := NewRecorder(eng)
		g := rec.MustAddGroup("n", m, 1)
		g.Transition(1, machine.PowerIdle, machine.PowerBusy)
		g.AddFlops(work)
		advance(eng, sim.FromSeconds(work/(m.PeakGFlops*1e9)))
		return rec.GFlopsPerWatt()
	}
	if b, c := run(machine.KNC), run(machine.Xeon); b <= c {
		t.Fatalf("booster %.2f <= cluster %.2f GFlop/W", b, c)
	}
}

// TestEnergyInvariantUnderEventReordering is the satellite property
// test: total energy depends only on how long each power state was
// occupied, not on the order in which same-time transition events
// fire. We build a random schedule of transitions, then replay it
// with every same-time batch shuffled differently; joules must agree
// to float rounding.
func TestEnergyInvariantUnderEventReordering(t *testing.T) {
	type move struct {
		at       sim.Time
		n        int
		from, to machine.PowerState
	}
	const nodes = 32
	for trial := 0; trial < 20; trial++ {
		r := rng.New(uint64(1000 + trial))
		// Generate a schedule that stays valid under any permutation of
		// its same-time batches: moves within one batch only draw nodes
		// the state held before the batch started (never nodes another
		// same-time move produces), so no ordering can overdraw.
		var sched []move
		occ := [machine.NumPowerStates]int{machine.PowerIdle: nodes}
		pre := occ // occupancy at the current batch's start
		var out [machine.NumPowerStates]int
		at := sim.Time(0)
		for i := 0; i < 40; i++ {
			if step := r.Intn(3); step > 0 {
				at += sim.Time(step) * 250 * sim.Millisecond
				pre = occ
				out = [machine.NumPowerStates]int{}
			}
			from := machine.PowerState(r.Intn(int(machine.NumPowerStates)))
			to := machine.PowerState(r.Intn(int(machine.NumPowerStates)))
			avail := pre[from] - out[from]
			if avail == 0 || from == to {
				continue
			}
			n := 1 + r.Intn(avail)
			out[from] += n
			occ[from] -= n
			occ[to] += n
			sched = append(sched, move{at, n, from, to})
		}
		run := func(perm []int) float64 {
			eng := sim.New()
			rec := NewRecorder(eng)
			g := rec.MustAddGroup("g", machine.KNC, nodes)
			// Schedule each move as its own event; the permutation
			// varies the scheduling order, and the engine breaks
			// same-time ties by that order.
			for _, idx := range perm {
				m := sched[idx]
				eng.At(m.at, func() { g.Transition(m.n, m.from, m.to) })
			}
			eng.Run()
			return rec.Joules()
		}
		base := make([]int, len(sched))
		for i := range base {
			base[i] = i
		}
		want := run(base)
		for shuffle := 0; shuffle < 5; shuffle++ {
			perm := append([]int(nil), base...)
			// Shuffle only within same-time batches so the schedule
			// stays valid (occupancy never goes negative).
			for i := 0; i < len(perm); i++ {
				j := i
				for j+1 < len(perm) && sched[perm[j+1]].at == sched[perm[i]].at {
					j++
				}
				for k := j; k > i; k-- {
					swap := i + r.Intn(k-i+1)
					perm[k], perm[swap] = perm[swap], perm[k]
				}
				i = j
			}
			if got := run(perm); math.Abs(got-want) > 1e-9*math.Abs(want)+1e-9 {
				t.Fatalf("trial %d: reordered run = %v, want %v", trial, got, want)
			}
		}
	}
}

// TestRecorderParallelRuns exercises independent engine+recorder
// pairs on concurrent goroutines — the deep.Runner shape — under the
// race detector (the CI race job includes this package).
func TestRecorderParallelRuns(t *testing.T) {
	var wg sync.WaitGroup
	results := make([]float64, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eng := sim.New()
			rec := NewRecorder(eng)
			g := rec.MustAddGroup("b", machine.KNC, 16)
			for k := 0; k < 50; k++ {
				k := k
				eng.At(sim.Time(k)*sim.Millisecond, func() {
					if k%2 == 0 {
						g.Transition(4, machine.PowerIdle, machine.PowerBusy)
					} else {
						g.Transition(4, machine.PowerBusy, machine.PowerIdle)
					}
				})
			}
			eng.Run()
			results[i] = rec.Joules()
		}(i)
	}
	wg.Wait()
	for i, j := range results {
		if math.Abs(j-results[0]) > 1e-9 {
			t.Fatalf("run %d joules %v differs from run 0 %v", i, j, results[0])
		}
	}
}
