// Package energy accounts for the electrical energy of simulated runs.
// It integrates per-node power over utilisation phases, yielding the
// joules and GFlop/W figures used by the energy-positioning experiment
// (the paper cites Xeon Phi at 5 GFlop/W and motivates the whole
// project with the ~100 MW exascale power wall).
package energy

import (
	"fmt"
	"sort"

	"repro/internal/machine"
	"repro/internal/sim"
)

// Meter accumulates energy for a set of node groups.
type Meter struct {
	groups map[string]*Group
}

// Group tracks one homogeneous set of nodes.
type Group struct {
	Model machine.NodeModel
	Count int

	joules float64
	flops  float64
	busy   sim.Time
	total  sim.Time
}

// NewMeter returns an empty meter.
func NewMeter() *Meter { return &Meter{groups: make(map[string]*Group)} }

// AddGroup registers count nodes of the given model under name.
// Re-adding an existing name replaces the model and count but keeps
// accumulated energy, so configurations must be fixed before phases are
// recorded; callers should treat that as a programming error.
func (m *Meter) AddGroup(name string, model machine.NodeModel, count int) *Group {
	g, ok := m.groups[name]
	if !ok {
		g = &Group{}
		m.groups[name] = g
	}
	g.Model = model
	g.Count = count
	return g
}

// Group returns the named group, or nil.
func (m *Meter) Group(name string) *Group { return m.groups[name] }

// Phase records that the named group spent d at the given utilisation,
// performing flops useful floating-point operations (may be zero for
// idle or communication phases). It panics on unknown group names —
// misattributed energy is a harness bug worth failing loudly on.
func (m *Meter) Phase(name string, d sim.Time, utilisation, flops float64) {
	g, ok := m.groups[name]
	if !ok {
		panic(fmt.Sprintf("energy: unknown group %q", name))
	}
	if d < 0 {
		panic("energy: negative phase duration")
	}
	watts := g.Model.Power(utilisation) * float64(g.Count)
	g.joules += watts * d.Seconds()
	g.flops += flops
	g.total += d
	if utilisation > 0 {
		g.busy += d
	}
}

// Joules returns the total energy across all groups.
func (m *Meter) Joules() float64 {
	sum := 0.0
	for _, g := range m.groups {
		sum += g.joules
	}
	return sum
}

// Flops returns total useful flops across all groups.
func (m *Meter) Flops() float64 {
	sum := 0.0
	for _, g := range m.groups {
		sum += g.flops
	}
	return sum
}

// GFlopsPerWatt returns achieved GFlop/J (== GFlop/s per W) over the
// recorded phases. Zero if no energy was recorded.
func (m *Meter) GFlopsPerWatt() float64 {
	j := m.Joules()
	if j == 0 {
		return 0
	}
	return m.Flops() / j / 1e9
}

// GroupNames returns the registered group names, sorted.
func (m *Meter) GroupNames() []string {
	names := make([]string, 0, len(m.groups))
	for n := range m.groups {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GroupJoules returns one group's accumulated energy.
func (g *Group) GroupJoules() float64 { return g.joules }

// GroupFlops returns one group's accumulated flops.
func (g *Group) GroupFlops() float64 { return g.flops }

// BusyFraction returns busy time / total recorded time for the group.
func (g *Group) BusyFraction() float64 {
	if g.total == 0 {
		return 0
	}
	return float64(g.busy) / float64(g.total)
}
