// Package energy is the event-driven power/energy telemetry layer of
// the simulated runs. Components publish power-state transitions and
// named energy charges into a Recorder as simulation events fire —
// the machine layer when nodes change between sleep/idle/busy, the
// fabric when transfers deliver, the resilience layer when checkpoint
// I/O burns watts — and the Recorder integrates watts over virtual
// time into the joules and GFlop/W figures the energy experiments
// report (the paper cites Xeon Phi at 5 GFlop/W and motivates the
// whole project with the ~100 MW exascale power wall).
//
// A nil *Recorder is inert: every method is a no-op, so components
// can publish unconditionally and energy-off runs pay nothing — the
// property the byte-identical default outputs rely on.
package energy

import (
	"fmt"
	"sort"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Recorder accumulates energy for a set of node groups plus named
// non-node charges (fabric transfer energy, checkpoint I/O, ...). It
// reads virtual time from the engine it was built over; accumulation
// is lazy — each group settles the elapsed occupancy-weighted energy
// whenever its state changes, which makes the total a pure function
// of state occupancy over time, independent of the order same-time
// events fire in.
type Recorder struct {
	eng     *sim.Engine
	groups  map[string]*NodeGroup
	charges map[string]float64
	frozen  bool
}

// NewRecorder returns an empty recorder over the engine's clock.
func NewRecorder(eng *sim.Engine) *Recorder {
	return &Recorder{
		eng:     eng,
		groups:  make(map[string]*NodeGroup),
		charges: make(map[string]float64),
	}
}

// now returns the current virtual time.
func (r *Recorder) now() sim.Time { return r.eng.Now() }

// AddGroup registers count nodes of the given model under name, all
// starting in the idle state. Re-adding an existing name is an error:
// the previous API silently replaced the model and count while
// keeping accumulated joules, a footgun that misattributed energy.
func (r *Recorder) AddGroup(name string, model machine.NodeModel, count int) (*NodeGroup, error) {
	if r == nil {
		return nil, nil
	}
	if _, dup := r.groups[name]; dup {
		return nil, fmt.Errorf("energy: group %q already registered", name)
	}
	if count <= 0 {
		return nil, fmt.Errorf("energy: group %q with %d nodes", name, count)
	}
	g := &NodeGroup{rec: r, Model: model, Count: count, util: 1, last: r.now()}
	g.counts[machine.PowerIdle] = count
	r.groups[name] = g
	return g, nil
}

// MustAddGroup is AddGroup for experiment setup code with fixed
// names; it panics on the errors AddGroup reports.
func (r *Recorder) MustAddGroup(name string, model machine.NodeModel, count int) *NodeGroup {
	g, err := r.AddGroup(name, model, count)
	if err != nil {
		panic(err)
	}
	return g
}

// Group returns the named group, or nil.
func (r *Recorder) Group(name string) *NodeGroup {
	if r == nil {
		return nil
	}
	return r.groups[name]
}

// Charge accumulates joules under a named non-node category
// ("fabric", "checkpoint-io", ...). Components call it as the
// corresponding simulation events fire.
func (r *Recorder) Charge(name string, joules float64) {
	if r == nil || r.frozen || joules == 0 {
		return
	}
	r.charges[name] += joules
}

// Freeze settles every group at the current virtual time and stops
// further accumulation. Call it at the moment the measured work
// completes when the engine keeps running past it (a fault injector's
// horizon, a periodic model): energy to *solution* is integrated over
// [0, solution], not over however long the event queue stays busy.
// Transitions after the freeze still move occupancy (so bookkeeping
// invariants hold) but add no joules.
func (r *Recorder) Freeze() {
	if r == nil || r.frozen {
		return
	}
	r.settleAll()
	r.frozen = true
}

// ChargeJoules returns one named charge category's total.
func (r *Recorder) ChargeJoules(name string) float64 {
	if r == nil {
		return 0
	}
	return r.charges[name]
}

// settleAll brings every group up to the current virtual time.
func (r *Recorder) settleAll() {
	for _, g := range r.groups {
		g.settle()
	}
}

// Joules returns the total energy across all groups and charges,
// settled to the current virtual time.
func (r *Recorder) Joules() float64 {
	if r == nil {
		return 0
	}
	r.settleAll()
	sum := 0.0
	for _, g := range r.groups {
		sum += g.joules
	}
	for _, j := range r.charges {
		sum += j
	}
	return sum
}

// Flops returns total useful flops across all groups.
func (r *Recorder) Flops() float64 {
	if r == nil {
		return 0
	}
	r.settleAll()
	sum := 0.0
	for _, g := range r.groups {
		sum += g.flops
	}
	return sum
}

// GFlopsPerWatt returns achieved GFlop/J (== GFlop/s per W) over the
// recorded run. Zero if no energy was recorded.
func (r *Recorder) GFlopsPerWatt() float64 {
	j := r.Joules()
	if j == 0 {
		return 0
	}
	return r.Flops() / j / 1e9
}

// GroupNames returns the registered group names, sorted.
func (r *Recorder) GroupNames() []string {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.groups))
	for n := range r.groups {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ChargeNames returns the named charge categories, sorted.
func (r *Recorder) ChargeNames() []string {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.charges))
	for n := range r.charges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NodeGroup tracks one homogeneous set of nodes: how many sit in each
// power state, settled lazily as transitions are published.
type NodeGroup struct {
	rec   *Recorder
	Model machine.NodeModel
	Count int

	counts [machine.NumPowerStates]int
	// util is the utilisation of the busy state's draw (Power(util));
	// 1 means full peak.
	util float64

	last        sim.Time
	joules      float64
	stateJ      [machine.NumPowerStates]float64
	stateNodeS  [machine.NumPowerStates]float64 // node-seconds per state
	flops       float64
	transitions uint64

	// Obs, when non-nil, receives every power-state transition as an
	// instant trace event on the ObsTid thread (typically obs.LanePower
	// plus a per-group offset). Nil is inert.
	Obs    *obs.Scope
	ObsTid int
}

// Recorder returns the recorder the group publishes into (nil for a
// nil group).
func (g *NodeGroup) Recorder() *Recorder {
	if g == nil {
		return nil
	}
	return g.rec
}

// watts returns the per-node draw in state s at the group's busy
// utilisation.
func (g *NodeGroup) watts(s machine.PowerState) float64 {
	if s == machine.PowerBusy {
		return g.Model.Power(g.util)
	}
	return g.Model.StateWatts(s)
}

// settle integrates the current occupancy up to the engine clock.
func (g *NodeGroup) settle() {
	now := g.rec.now()
	dt := (now - g.last).Seconds()
	if dt <= 0 || g.rec.frozen {
		g.last = now
		return
	}
	for s, n := range g.counts {
		if n == 0 {
			continue
		}
		j := g.watts(machine.PowerState(s)) * float64(n) * dt
		g.joules += j
		g.stateJ[s] += j
		g.stateNodeS[s] += float64(n) * dt
	}
	g.last = now
}

// Transition moves n nodes from one power state to another at the
// current virtual time. Moving more nodes than the source state holds
// panics: misattributed occupancy is a model bug worth failing loudly
// on. Wake/sleep latencies are the caller's to model (delay the
// transition event by Model.WakeLatency / SleepLatency).
func (g *NodeGroup) Transition(n int, from, to machine.PowerState) {
	if g == nil || n == 0 {
		return
	}
	if n < 0 {
		panic(fmt.Sprintf("energy: transition of %d nodes", n))
	}
	g.settle()
	if g.counts[from] < n {
		panic(fmt.Sprintf("energy: transition of %d nodes %v->%v but only %d are %v",
			n, from, to, g.counts[from], from))
	}
	g.counts[from] -= n
	g.counts[to] += n
	g.transitions++
	if g.Obs.Enabled() {
		g.Obs.Instant(g.ObsTid, "power", from.String()+"->"+to.String(), g.rec.now(),
			obs.KV{K: "n", V: n}, obs.KV{K: "busy", V: g.counts[machine.PowerBusy]})
	}
}

// SetBusyUtilisation settles and changes the busy-state utilisation
// for subsequent occupancy (draw Power(u) instead of PeakWatts).
func (g *NodeGroup) SetBusyUtilisation(u float64) {
	if g == nil {
		return
	}
	g.settle()
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	g.util = u
}

// AddFlops credits useful floating-point work to the group.
func (g *NodeGroup) AddFlops(f float64) {
	if g == nil {
		return
	}
	g.flops += f
}

// InState returns how many nodes currently sit in state s.
func (g *NodeGroup) InState(s machine.PowerState) int {
	if g == nil {
		return 0
	}
	return g.counts[s]
}

// Joules returns the group's accumulated energy, settled to now.
func (g *NodeGroup) Joules() float64 {
	if g == nil {
		return 0
	}
	g.settle()
	return g.joules
}

// StateJoules returns the energy attributed to one power state.
func (g *NodeGroup) StateJoules(s machine.PowerState) float64 {
	if g == nil {
		return 0
	}
	g.settle()
	return g.stateJ[s]
}

// StateNodeSeconds returns the node-seconds spent in one power state.
func (g *NodeGroup) StateNodeSeconds(s machine.PowerState) float64 {
	if g == nil {
		return 0
	}
	g.settle()
	return g.stateNodeS[s]
}

// Flops returns the group's accumulated useful flops.
func (g *NodeGroup) Flops() float64 {
	if g == nil {
		return 0
	}
	g.settle()
	return g.flops
}

// Transitions returns how many state transitions were published.
func (g *NodeGroup) Transitions() uint64 {
	if g == nil {
		return 0
	}
	return g.transitions
}

// BusyFraction returns busy node-seconds over total node-seconds.
func (g *NodeGroup) BusyFraction() float64 {
	if g == nil {
		return 0
	}
	g.settle()
	total := 0.0
	for _, s := range g.stateNodeS {
		total += s
	}
	if total == 0 {
		return 0
	}
	return g.stateNodeS[machine.PowerBusy] / total
}
