// Cholesky: the paper's OmpSs example (slide 23) end to end through
// the public deep SDK — a tiled Cholesky factorisation whose
// potrf/trsm/gemm/syrk tasks declare data dependences, executed as a
// dataflow graph and verified against the unblocked reference
// factorisation, followed by the modelled dataflow-vs-fork-join sweep
// (experiment E06) that shows why the paper adopts the dataflow model.
//
//	go run ./examples/cholesky
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/deep"
)

func main() {
	ctx := context.Background()

	// Real dataflow execution with verification, on the default
	// machine: a 128x128 SPD matrix in 16x16 tiles over 8 workers.
	m, err := deep.NewMachine(deep.WithSeed(2024))
	if err != nil {
		log.Fatal(err)
	}
	res, err := deep.Run(ctx, m.NewEnv(), deep.Cholesky{N: 128, TileSize: 16, Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// The modelled speedup figure on a KNC booster node: dataflow vs
	// fork-join over worker counts — regenerated through the same
	// Runner cmd/deepbench uses.
	rep, err := (&deep.Runner{}).Run(ctx, "E06")
	if err != nil {
		log.Fatal(err)
	}
	if err := (deep.TableSink{}).Write(os.Stdout, rep); err != nil {
		log.Fatal(err)
	}
}
