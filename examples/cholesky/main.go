// Cholesky: the paper's OmpSs example (slide 23) end to end — a tiled
// Cholesky factorisation written as a sequential loop nest whose
// potrf/trsm/gemm/syrk tasks declare data dependences, executed (a) as
// a dataflow graph and (b) with fork-join barriers, then verified
// against the unblocked reference factorisation. The modelled-makespan
// sweep shows why the paper adopts the dataflow model.
//
//	go run ./examples/cholesky
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"repro/internal/apps"
	"repro/internal/linalg"
	"repro/internal/machine"
	"repro/internal/ompss"
	"repro/internal/rng"
	"repro/internal/stats"
)

func main() {
	const n, ts, workers = 128, 16, 8
	r := rng.New(2024)
	src := linalg.SPDMatrix(n, r.Float64)
	ref := src.Clone()
	if err := linalg.CholeskyRef(ref); err != nil {
		log.Fatal(err)
	}

	// Real dataflow execution with verification.
	c, err := apps.NewCholesky(src, ts)
	if err != nil {
		log.Fatal(err)
	}
	tracer := ompss.NewTracer()
	rt := ompss.New(workers, ompss.WithScheduler(ompss.NewPriority()), ompss.WithTracer(tracer))
	if err := c.RunDataflow(rt); err != nil {
		log.Fatal(err)
	}
	st := rt.Stats()
	rt.Shutdown()
	got := c.Result()
	maxDiff := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			maxDiff = math.Max(maxDiff, math.Abs(got.At(i, j)-ref.At(i, j)))
		}
	}
	fmt.Printf("tiled Cholesky %dx%d, %dx%d tiles, %d workers\n", n, n, ts, ts, workers)
	fmt.Printf("  tasks=%d (potrf=%d trsm=%d gemm=%d syrk=%d), dependence edges=%d\n",
		st.Submitted, st.ByName["potrf"], st.ByName["trsm"],
		st.ByName["gemm"], st.ByName["syrk"], st.Edges)
	fmt.Printf("  max |L - Lref| = %.3e  => %s\n", maxDiff, verdict(maxDiff < 1e-8))

	// Timeline summary from the execution tracer (the Paraver/Extrae
	// role in the OmpSs toolchain; WriteChromeTrace exports the full
	// timeline for chrome://tracing).
	sum := tracer.Summarize()
	fmt.Printf("  traced %d task executions over %v wall time\n", sum.Tasks, sum.Span.Round(time.Microsecond))
	for _, name := range []string{"potrf", "trsm", "gemm", "syrk"} {
		fmt.Printf("    %-5s %v\n", name, sum.TimeByName[name].Round(time.Microsecond))
	}
	fmt.Println()

	// Modelled speedup sweep on a KNC booster node: dataflow vs
	// fork-join (the figure E06 regenerates).
	g := c.Graph(machine.KNC)
	serial := g.Makespan(1)
	tab := stats.NewTable("modelled speedup on KNC (dataflow vs fork-join)",
		"workers", "dataflow", "forkjoin")
	for _, w := range []int{1, 2, 4, 8, 16, 32} {
		tab.AddRow(w,
			float64(serial)/float64(g.Makespan(w)),
			float64(serial)/float64(c.ForkJoinMakespan(machine.KNC, w)))
	}
	tab.AddNote("critical path limits speedup to %.1f",
		float64(serial)/float64(g.CriticalPath()))
	if err := tab.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func verdict(ok bool) string {
	if ok {
		return "VERIFIED"
	}
	return "FAILED"
}
