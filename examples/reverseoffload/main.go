// Reverseoffload: booster kernels calling back into Cluster-side
// services while they run. The paper's Booster nodes "act
// autonomously", but the application's main() part — and with it
// anything that needs the outside world (parameter databases, file
// systems) — stays on the Cluster; this example shows a spawned
// booster kernel fetching per-shard coefficients from a cluster-side
// service through the inter-communicator, mid-kernel.
//
//	go run ./examples/reverseoffload
package main

import (
	"fmt"
	"log"

	"repro/internal/mpi"
	"repro/internal/offload"
)

func main() {
	// Cluster-side service: a "parameter database" that the booster
	// cannot host (it lives with main()).
	coefficients := map[int]float64{0: 1.5, 1: 2.5, 2: 3.5, 3: 4.5}

	cfg := offload.Config{
		Workers: 4,
		Spawn:   mpi.DefaultSpawnConfig(),
		Services: map[string]offload.Service{
			"coeff": func(args []float64) ([]float64, error) {
				c, ok := coefficients[int(args[0])]
				if !ok {
					return nil, fmt.Errorf("no coefficient for shard %d", int(args[0]))
				}
				return []float64{c}, nil
			},
		},
		EnvKernels: map[string]offload.EnvKernel{
			// weighted-scale fetches its shard's coefficient from the
			// cluster, then scales its slice of the data with it.
			"weighted-scale": func(env *offload.Env, req offload.Request) ([]float64, error) {
				coeff, err := env.CallCluster("coeff", []float64{float64(env.Rank)})
				if err != nil {
					return nil, err
				}
				lo, hi := offload.ShardRange(len(req.Data), env.Rank, env.Size)
				out := make([]float64, hi-lo)
				for i := lo; i < hi; i++ {
					out[i-lo] = req.Data[i] * coeff[0]
				}
				return out, nil
			},
		},
	}

	_, err := mpi.Run(1, mpi.ZeroTransport{}, func(c *mpi.Comm) error {
		m := offload.NewManager(c, cfg, nil)
		defer m.Shutdown()

		data := []float64{10, 10, 10, 10, 10, 10, 10, 10}
		out, err := m.Invoke(offload.Request{Kernel: "weighted-scale", Data: data})
		if err != nil {
			return err
		}
		fmt.Println("booster kernel with reverse calls to the cluster:")
		fmt.Printf("  input : %v\n", data)
		fmt.Printf("  output: %v\n", out)
		fmt.Printf("  reverse calls handled by the cluster: %d\n", m.ReverseCalls)
		want := []float64{15, 15, 25, 25, 35, 35, 45, 45}
		for i := range want {
			if out[i] != want[i] {
				return fmt.Errorf("verification failed at %d: %v != %v", i, out[i], want[i])
			}
		}
		fmt.Println("  VERIFIED")
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
