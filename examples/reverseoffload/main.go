// Reverseoffload: booster kernels calling back into Cluster-side
// services while they run. The paper's Booster nodes "act
// autonomously", but the application's main() part — and with it
// anything that needs the outside world (parameter databases, file
// systems) — stays on the Cluster; this example shows a deep.Offload
// workload whose kernel fetches per-shard coefficients from a
// cluster-side service through the inter-communicator, mid-kernel.
//
//	go run ./examples/reverseoffload
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/deep"
)

func main() {
	// Cluster-side service: a "parameter database" that the booster
	// cannot host (it lives with main()).
	coefficients := map[int]float64{0: 1.5, 1: 2.5, 2: 3.5, 3: 4.5}

	m, err := deep.NewMachine(deep.WithBoosterWorkers(4))
	if err != nil {
		log.Fatal(err)
	}

	w := deep.Offload{
		Kernel: "weighted-scale",
		Data:   []float64{10, 10, 10, 10, 10, 10, 10, 10},
		// weighted-scale fetches its shard's coefficient from the
		// cluster, then scales its slice of the data with it.
		Reverse: func(call deep.ServiceCall, rank, size int, in []float64) ([]float64, error) {
			coeff, err := call("coeff", []float64{float64(rank)})
			if err != nil {
				return nil, err
			}
			lo, hi := deep.ShardRange(len(in), rank, size)
			out := make([]float64, hi-lo)
			for i := lo; i < hi; i++ {
				out[i-lo] = in[i] * coeff[0]
			}
			return out, nil
		},
		Services: map[string]deep.ClusterService{
			"coeff": func(args []float64) ([]float64, error) {
				c, ok := coefficients[int(args[0])]
				if !ok {
					return nil, fmt.Errorf("no coefficient for shard %d", int(args[0]))
				}
				return []float64{c}, nil
			},
		},
		Want: []float64{15, 15, 25, 25, 35, 35, 45, 45},
	}

	fmt.Println("booster kernel with reverse calls to the cluster:")
	res, err := deep.Run(context.Background(), m.NewEnv(), w)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	calls, _ := res.Metric("reverse_calls")
	fmt.Printf("reverse calls handled by the cluster: %.0f\n", calls)
}
