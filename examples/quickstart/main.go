// Quickstart: build a small DEEP machine, offload one parallel kernel
// from the Cluster to a spawned Booster worker group, and print the
// verified result together with the modelled execution time.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/offload"
)

func main() {
	// The kernel registry is shared by construction between the
	// Cluster and Booster sides — the role of DEEP's dual-compiled
	// application binary.
	registry := offload.Registry{
		// square computes the elementwise square of its shard.
		"square": func(rank, size int, req offload.Request) ([]float64, error) {
			lo, hi := offload.ShardRange(len(req.Data), rank, size)
			out := make([]float64, hi-lo)
			for i := lo; i < hi; i++ {
				out[i-lo] = req.Data[i] * req.Data[i]
			}
			return out, nil
		},
	}

	cfg := core.Config{
		ClusterRanks:   2,  // application main()-part processes
		ClusterNodes:   8,  // Xeon nodes on InfiniBand
		BoosterNodes:   27, // KNC nodes on a 3x3x3 EXTOLL torus
		BoosterWorkers: 8,  // spawned highly-scalable-code-part group
		Registry:       registry,
		ModelCompute:   true,
	}

	makespan, err := core.Run(cfg, func(d *core.Deep) error {
		if d.Comm.Rank() != 0 {
			return nil // only rank 0 offloads in this demo
		}
		data := make([]float64, 16)
		for i := range data {
			data[i] = float64(i)
		}
		out, err := d.Boost.Invoke(offload.Request{
			Kernel:       "square",
			Data:         data,
			FlopsPerRank: 1e6,
		})
		if err != nil {
			return err
		}
		fmt.Println("offloaded square kernel over", d.Boost.Workers(), "booster workers:")
		for i, v := range out {
			if v != data[i]*data[i] {
				return fmt.Errorf("verification failed at %d: %v", i, v)
			}
		}
		fmt.Printf("  in:  %v\n  out: %v\n  VERIFIED\n", data[:8], out[:8])
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("modelled makespan on the DEEP machine: %v\n", makespan)
}
