// Quickstart: build a small DEEP machine with the public deep SDK,
// offload one parallel kernel from the Cluster to the spawned Booster
// worker group, and print the verified result together with the
// modelled execution time.
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -energy              # add the energy block
//	go run ./examples/quickstart -fidelity flow       # flow-level fabric
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/deep"
)

func main() {
	var (
		energyFlag = flag.Bool("energy", false, "meter energy to solution (Result.Energy block)")
		fidStr     = flag.String("fidelity", "default", "fabric transfer model: default | packet | flow | auto")
	)
	flag.Parse()
	fid, err := deep.ParseFidelity(*fidStr)
	if err != nil {
		log.Fatal(err)
	}

	// One Machine describes the whole modelled system: Xeon cluster
	// nodes on InfiniBand, KNC booster nodes on a 3x3x3 EXTOLL torus,
	// and the worker group spawned for offloaded kernels.
	opts := []deep.Option{
		deep.WithClusterNodes(8),
		deep.WithBoosterTorus(3, 3, 3),
		deep.WithClusterRanks(2),
		deep.WithBoosterWorkers(8),
		deep.WithModelCompute(),
		deep.WithFidelity(fid),
	}
	if *energyFlag {
		opts = append(opts, deep.WithEnergyMetering())
	}
	m, err := deep.NewMachine(opts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(m)

	// The kernel is shared by construction between the Cluster and
	// Booster sides — the role of DEEP's dual-compiled application
	// binary. Each worker squares its shard of the input.
	data := make([]float64, 16)
	want := make([]float64, 16)
	for i := range data {
		data[i] = float64(i)
		want[i] = data[i] * data[i]
	}
	square := deep.Offload{
		Kernel:       "square",
		Data:         data,
		FlopsPerRank: 1e6,
		Fn: func(rank, size int, in []float64) ([]float64, error) {
			lo, hi := deep.ShardRange(len(in), rank, size)
			out := make([]float64, hi-lo)
			for i := lo; i < hi; i++ {
				out[i-lo] = in[i] * in[i]
			}
			return out, nil
		},
		Want: want,
	}

	res, err := deep.Run(context.Background(), m.NewEnv(), square)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("modelled makespan on the DEEP machine: %v\n", res.ModelTime)
}
