// Dynamicbooster: the resource-management story of the paper (slides
// 8, 21) — a job mix with skewed accelerator demand scheduled three
// times through the deep.ScheduledJobs workload: once with the static
// host-owns-its-accelerators wiring of a conventional accelerated
// cluster, once with the dynamic pool assignment the Cluster-Booster
// architecture enables, and once adding topology-aware contiguous
// sub-torus allocation.
//
//	go run ./examples/dynamicbooster
package main

import (
	"context"
	"fmt"
	"log"

	"repro/deep"
	"repro/internal/rng"
)

// workload builds a reproducible Zipf-skewed job mix: some jobs want
// many boosters while their owner only holds four.
func workload() []deep.Job {
	r := rng.New(99)
	zipf := rng.NewZipf(r, 8, 1.1)
	jobs := make([]deep.Job, 32)
	for i := range jobs {
		jobs[i] = deep.Job{
			ID:       i,
			Arrival:  float64(i) * 0.05,
			Boosters: 1 << uint(zipf.Next()%5), // 1..16
			Duration: float64(r.Intn(400)+100) / 1000,
			Owner:    r.Intn(8),
		}
	}
	return jobs
}

func main() {
	// 32 boosters on a 4x4x2 EXTOLL torus, 8 owners x 4 boosters.
	m, err := deep.NewMachine(deep.WithBoosterTorus(4, 4, 2))
	if err != nil {
		log.Fatal(err)
	}
	jobs := workload()

	ctx := context.Background()
	fmt.Println("booster assignment on a 4x4x2 EXTOLL torus (32 jobs):")
	for _, cfg := range []struct {
		name string
		w    deep.ScheduledJobs
	}{
		{"static (host-owned)", deep.ScheduledJobs{Jobs: jobs, BoostersPerOwner: 4}},
		{"dynamic first-fit", deep.ScheduledJobs{Jobs: jobs, BoostersPerOwner: 4, Dynamic: true}},
		{"dynamic sub-torus", deep.ScheduledJobs{Jobs: jobs, BoostersPerOwner: 4, Dynamic: true, Contiguous: true}},
	} {
		res, err := deep.Run(ctx, m.NewEnv(), cfg.w)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Verified {
			log.Fatalf("%s lost jobs: %v", cfg.name, res.Notes)
		}
		makespan, _ := res.Metric("makespan_s")
		util, _ := res.Metric("utilisation")
		wait, _ := res.Metric("mean_wait_ms")
		fmt.Printf("  %-22s makespan %.3f s   utilisation %.3f   mean wait %.1f ms\n",
			cfg.name, makespan, util, wait)
	}
	fmt.Println()
	fmt.Println("static binds each job to its owner's 4 boosters; dynamic draws from the")
	fmt.Println("pool; sub-torus allocation additionally keeps each job's nodes contiguous.")
	fmt.Println("the dynamic rows reproduce the paper's argument for network-attached,")
	fmt.Println("dynamically assignable boosters (slide 8)")
}
