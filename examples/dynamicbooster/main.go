// Dynamicbooster: the resource-management story of the paper (slides
// 8, 21) — a job mix with skewed accelerator demand scheduled three
// times through the deep.ScheduledJobs workload: once with the static
// host-owns-its-accelerators wiring of a conventional accelerated
// cluster, once with the dynamic pool assignment the Cluster-Booster
// architecture enables, and once adding topology-aware contiguous
// sub-torus allocation.
//
// With -energy the machine meters energy to solution and a fourth,
// power-gated configuration joins the sweep: free boosters sleep and
// wake with a latency penalty — the energy/latency trade the
// Cluster-Booster pool enables.
//
//	go run ./examples/dynamicbooster
//	go run ./examples/dynamicbooster -energy
//	go run ./examples/dynamicbooster -energy -fidelity auto
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/deep"
	"repro/internal/rng"
)

// workload builds a reproducible Zipf-skewed job mix: some jobs want
// many boosters while their owner only holds four.
func workload() []deep.Job {
	r := rng.New(99)
	zipf := rng.NewZipf(r, 8, 1.1)
	jobs := make([]deep.Job, 32)
	for i := range jobs {
		jobs[i] = deep.Job{
			ID:       i,
			Arrival:  float64(i) * 0.05,
			Boosters: 1 << uint(zipf.Next()%5), // 1..16
			Duration: float64(r.Intn(400)+100) / 1000,
			Owner:    r.Intn(8),
		}
	}
	return jobs
}

func main() {
	var (
		energyFlag = flag.Bool("energy", false, "meter energy and add a power-gated configuration")
		fidStr     = flag.String("fidelity", "default", "fabric transfer model: default | packet | flow | auto")
	)
	flag.Parse()
	fid, err := deep.ParseFidelity(*fidStr)
	if err != nil {
		log.Fatal(err)
	}

	// 32 boosters on a 4x4x2 EXTOLL torus, 8 owners x 4 boosters.
	machineOpts := func(extra ...deep.Option) []deep.Option {
		opts := []deep.Option{deep.WithBoosterTorus(4, 4, 2), deep.WithFidelity(fid)}
		if *energyFlag {
			opts = append(opts, deep.WithEnergyMetering())
		}
		return append(opts, extra...)
	}
	m, err := deep.NewMachine(machineOpts()...)
	if err != nil {
		log.Fatal(err)
	}
	// The gated machine sleeps free boosters; they wake with the KNC
	// model's 10 ms latency when a job lands on them.
	gated, err := deep.NewMachine(machineOpts(deep.WithPowerGating(0))...)
	if err != nil {
		log.Fatal(err)
	}
	jobs := workload()

	ctx := context.Background()
	fmt.Println("booster assignment on a 4x4x2 EXTOLL torus (32 jobs):")
	configs := []struct {
		name string
		m    *deep.Machine
		w    deep.ScheduledJobs
	}{
		{"static (host-owned)", m, deep.ScheduledJobs{Jobs: jobs, BoostersPerOwner: 4}},
		{"dynamic first-fit", m, deep.ScheduledJobs{Jobs: jobs, BoostersPerOwner: 4, Dynamic: true}},
		{"dynamic sub-torus", m, deep.ScheduledJobs{Jobs: jobs, BoostersPerOwner: 4, Dynamic: true, Contiguous: true}},
	}
	if *energyFlag {
		configs = append(configs, struct {
			name string
			m    *deep.Machine
			w    deep.ScheduledJobs
		}{"dynamic power-gated", gated, deep.ScheduledJobs{Jobs: jobs, BoostersPerOwner: 4, Dynamic: true}})
	}
	for _, cfg := range configs {
		res, err := deep.Run(ctx, cfg.m.NewEnv(), cfg.w)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Verified {
			log.Fatalf("%s lost jobs: %v", cfg.name, res.Notes)
		}
		makespan, _ := res.Metric("makespan_s")
		util, _ := res.Metric("utilisation")
		wait, _ := res.Metric("mean_wait_ms")
		fmt.Printf("  %-22s makespan %.3f s   utilisation %.3f   mean wait %.1f ms",
			cfg.name, makespan, util, wait)
		if e := res.Energy; e != nil {
			fmt.Printf("   %.1f kJ (%.2f GFlop/W)", e.Joules/1e3, e.GFlopsPerWatt)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("static binds each job to its owner's 4 boosters; dynamic draws from the")
	fmt.Println("pool; sub-torus allocation additionally keeps each job's nodes contiguous.")
	fmt.Println("the dynamic rows reproduce the paper's argument for network-attached,")
	fmt.Println("dynamically assignable boosters (slide 8)")
	if *energyFlag {
		fmt.Println("power gating sleeps free boosters (20 W instead of 90 W) and pays the")
		fmt.Println("wake latency on allocation: joules drop, makespan grows slightly")
	}
}
