// Dynamicbooster: the resource-management story of the paper (slides
// 8, 21) — a job mix with skewed accelerator demand scheduled twice,
// once with the static host-owns-its-accelerators wiring of a
// conventional accelerated cluster, once with the dynamic pool
// assignment the Cluster-Booster architecture enables, including
// topology-aware contiguous sub-torus allocation.
//
//	go run ./examples/dynamicbooster
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/resource"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

func workload() []*resource.Job {
	r := rng.New(99)
	zipf := rng.NewZipf(r, 8, 1.1)
	jobs := make([]*resource.Job, 32)
	for i := range jobs {
		jobs[i] = &resource.Job{
			ID:       i,
			Arrival:  sim.Time(i) * 50 * sim.Millisecond,
			Boosters: 1 << uint(zipf.Next()%5), // 1..16
			Duration: sim.Time(r.Intn(400)+100) * sim.Millisecond,
			Owner:    r.Intn(8),
		}
	}
	return jobs
}

func run(mode resource.AssignMode, contiguous bool) *resource.Scheduler {
	eng := sim.New()
	pool := resource.NewTorusPool(topology.NewTorus3D(4, 4, 2)) // 32 boosters
	pool.PartitionOwners(4)                                     // 8 owners x 4 boosters
	s := resource.NewScheduler(eng, pool, mode)
	s.Backfill = mode == resource.Dynamic
	if contiguous {
		s.Policy = resource.Contiguous
	}
	for _, j := range workload() {
		s.Submit(j)
	}
	eng.Run()
	return s
}

func main() {
	tab := stats.NewTable("booster assignment on a 4x4x2 EXTOLL torus (32 jobs)",
		"policy", "makespan_s", "utilisation", "mean_wait_ms")
	for _, cfg := range []struct {
		name       string
		mode       resource.AssignMode
		contiguous bool
	}{
		{"static (host-owned)", resource.Static, false},
		{"dynamic first-fit", resource.Dynamic, false},
		{"dynamic sub-torus", resource.Dynamic, true},
	} {
		s := run(cfg.mode, cfg.contiguous)
		if len(s.Completed()) != 32 {
			log.Fatalf("%s lost jobs: %d of 32", cfg.name, len(s.Completed()))
		}
		tab.AddRow(cfg.name, s.Makespan().Seconds(), s.Utilisation(),
			float64(s.MeanWait())/float64(sim.Millisecond))
	}
	tab.AddNote("static binds each job to its owner's 4 boosters; dynamic draws from the pool")
	tab.AddNote("sub-torus allocation additionally keeps each job's nodes contiguous (lower hop counts)")
	if err := tab.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe dynamic rows reproduce the paper's argument for network-attached,")
	fmt.Println("dynamically assignable boosters (slide 8)")
}
