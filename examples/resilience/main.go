// Resilience: the DEEP-ER dimension of the paper — at thousands of
// booster nodes failures stop being exceptional, so the resource
// manager must requeue jobs killed by node failures, restart them from
// multi-level checkpoints, and heal the booster pool as nodes fail and
// return. This walkthrough attaches a Weibull fault injector to a
// 64-booster machine, compares no-checkpointing against Daly-interval
// buddy-SSD checkpointing on the same failure trace, and regenerates
// the checkpoint-interval sweep (experiment E14).
//
//	go run ./examples/resilience
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/deep"
	"repro/internal/rng"
)

const (
	nodes = 64
	mtbf  = 200.0 // per-node MTBF, seconds
	write = 0.5   // local-SSD checkpoint write, seconds (buddy doubles it)
)

// workload builds 24 jobs of 10-30 s across 1-8 boosters each.
func workload() []deep.Job {
	r := rng.New(41)
	jobs := make([]deep.Job, 24)
	for i := range jobs {
		jobs[i] = deep.Job{
			ID:       i,
			Arrival:  float64(i) * 0.5,
			Boosters: 1 << uint(r.Intn(4)), // 1..8 boosters
			Duration: float64(r.Intn(20000)+10000) / 1000,
		}
	}
	return jobs
}

func main() {
	fmt.Println("DEEP resilience walkthrough: failures, checkpoints, self-healing")
	fmt.Println()

	// The Daly interval for buddy-replicated local checkpoints: the
	// effective write cost is 2x the SSD write.
	delta := 2 * write
	daly := deep.DalyInterval(delta, mtbf)
	fmt.Printf("per-node MTBF %.0f s, checkpoint write %.1f s (buddy) -> "+
		"Young interval %.1f s, Daly interval %.1f s\n\n",
		mtbf, delta, deep.YoungInterval(delta, mtbf), daly)

	// The machine carries the fault plan: every workload run on it
	// sees the same deterministic Weibull failure trace
	// (infant-mortality regime, seed 5).
	m, err := deep.NewMachine(
		deep.WithBoosterNodes(nodes),
		deep.WithFaultInjector(deep.FaultPlan{
			NodeMTBF:     mtbf,
			WeibullShape: 0.7,
			Repair:       10,
			Seed:         5,
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	jobs := workload()
	ckpt := &deep.Checkpointing{Interval: daly, Write: write, Restore: write / 2, Buddy: true}
	fmt.Println("24 jobs on 64 boosters under Weibull failures:")
	for _, mode := range []struct {
		name string
		c    *deep.Checkpointing
	}{
		{"none (restart from scratch)", nil},
		{"buddy-SSD @ Daly", ckpt},
	} {
		res, err := deep.Run(ctx, m.NewEnv(), deep.ScheduledJobs{Jobs: jobs, Dynamic: true, Ckpt: mode.c})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Verified {
			log.Fatalf("%s: %v", mode.name, res.Notes)
		}
		failures, _ := res.Metric("node_failures")
		repairs, _ := res.Metric("node_repairs")
		makespan, _ := res.Metric("makespan_s")
		requeues, _ := res.Metric("requeues")
		lost, _ := res.Metric("lost_work_s")
		fmt.Printf("  %-28s %3.0f node failures, %3.0f healed: makespan %6.2f s, %2.0f requeues, %6.1f s lost work\n",
			mode.name, failures, repairs, makespan, requeues, lost)
	}
	fmt.Printf("\nsame failure trace (seed 5) in both runs; checkpointing trades ~%.0f%% write\noverhead for far less rework\n\n", 100*delta/daly)

	// The full checkpoint-interval sweep around the Daly optimum,
	// through the experiment registry.
	rep, err := (&deep.Runner{}).Run(ctx, "E14")
	if err != nil {
		log.Fatal(err)
	}
	if err := (deep.TableSink{}).Write(os.Stdout, rep); err != nil {
		log.Fatal(err)
	}
}
