// Resilience: the DEEP-ER dimension of the paper — at thousands of
// booster nodes failures stop being exceptional, so the resource
// manager must requeue jobs killed by node failures, restart them from
// multi-level checkpoints, and heal the booster pool as nodes fail and
// return. This walkthrough injects a deterministic failure trace into
// a 64-booster run, compares no-checkpointing vs Daly-interval
// buddy-SSD checkpointing, and knocks a fabric link out mid-transfer
// to show the link layer riding through the outage.
//
//	go run ./examples/resilience
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/fabric"
	"repro/internal/resil"
	"repro/internal/resource"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

const (
	nodes = 64
	mtbf  = 200.0 // per-node MTBF, seconds
	write = 0.5   // local-SSD checkpoint write, seconds (buddy doubles it)
)

func workload() []*resource.Job {
	r := rng.New(41)
	jobs := make([]*resource.Job, 24)
	for i := range jobs {
		jobs[i] = &resource.Job{
			ID:       i,
			Arrival:  sim.Time(i) * 500 * sim.Millisecond,
			Boosters: 1 << uint(r.Intn(4)), // 1..8 boosters
			Duration: sim.Time(r.Intn(20000)+10000) * sim.Millisecond,
		}
	}
	return jobs
}

func run(ckpt *resil.Checkpoint) (*resource.Scheduler, *resil.Injector) {
	eng := sim.New()
	pool := resource.NewPool(nodes)
	s := resource.NewScheduler(eng, pool, resource.Dynamic)
	s.Backfill = true
	s.Ckpt = ckpt
	for _, j := range workload() {
		s.Submit(j)
	}
	inj := resil.NewInjector(eng, 600*sim.Second)
	inj.Nodes(nodes, resil.Faults{
		TTF: resil.Weibull{Shape: 0.7, Scale: mtbf}, // infant-mortality regime
		TTR: resil.Fixed{D: 10},
	}, 5, s)
	eng.Run()
	return s, inj
}

func main() {
	fmt.Println("DEEP resilience walkthrough: failures, checkpoints, self-healing")
	fmt.Println()

	// The Daly interval for buddy-replicated local checkpoints: the
	// effective write cost is 2x the SSD write.
	delta := 2 * write
	daly := resil.DalyInterval(delta, mtbf)
	fmt.Printf("per-node MTBF %.0f s, checkpoint write %.1f s (buddy) -> "+
		"Young interval %.1f s, Daly interval %.1f s\n\n",
		mtbf, delta, resil.YoungInterval(delta, mtbf), daly)

	ckpt := &resil.Checkpoint{
		Interval:     sim.FromSeconds(daly),
		LocalWrite:   sim.FromSeconds(write),
		LocalRestore: sim.FromSeconds(write / 2),
		Buddy:        true,
	}
	tab := stats.NewTable("24 jobs on 64 boosters under Weibull failures",
		"checkpointing", "makespan_s", "utilisation", "requeues", "lost_work_s")
	for _, mode := range []struct {
		name string
		c    *resil.Checkpoint
	}{
		{"none (restart from scratch)", nil},
		{"buddy-SSD @ Daly", ckpt},
	} {
		s, inj := run(mode.c)
		if len(s.Completed()) != 24 {
			log.Fatalf("%s: only %d jobs completed", mode.name, len(s.Completed()))
		}
		fmt.Printf("  %-28s %3d node failures injected, %3d healed\n",
			mode.name, inj.NodeFailures, inj.NodeRepairs)
		tab.AddRow(mode.name, s.Makespan().Seconds(), s.Utilisation(),
			int(s.Requeued), s.LostWork.Seconds())
	}
	fmt.Println()
	tab.AddNote("same failure trace (seed 5) in both runs; checkpointing trades ~%.0f%% write overhead for far less rework", 100*delta/daly)
	if err := tab.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// Fabric-link outage: a transfer crossing a failed EXTOLL link is
	// retried by the link layer and completes once the link heals.
	eng := sim.New()
	topo := topology.NewTorus3D(4, 4, 4)
	p := fabric.Extoll
	p.MaxRetries = 1 << 20
	net := fabric.MustNetwork(eng, topo, p, 1)
	route := topo.Route(0, 9)
	clean := net.ZeroLoadLatency(0, 9, 1<<20)
	net.LinkFailed(int(route[0]))
	eng.At(2*sim.Millisecond, func() { net.LinkRepaired(int(route[0])) })
	var delivered sim.Time
	net.Send(0, 9, 1<<20, func(at sim.Time, err error) {
		if err != nil {
			log.Fatalf("transfer lost: %v", err)
		}
		delivered = at
	})
	eng.Run()
	fmt.Printf("link outage: 1 MiB over a failed EXTOLL link delivered at %v "+
		"(healthy fabric: %v), %d retries while down\n",
		delivered, clean, net.Stats.Retransmits)
}
