// SpMV: the paper's "highly scalable" application class — a sparse
// matrix-vector iteration with nearest-neighbour halo exchange —
// running as real Global-MPI ranks placed on the booster nodes of a
// deep.Machine, so the virtual clocks reflect EXTOLL costs. The
// workload verifies the distributed result against the sequential
// reference and reports the communication statistics that make the
// class booster-friendly (regular, small, neighbour-only traffic).
//
//	go run ./examples/spmv
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/deep"
)

func main() {
	m, err := deep.NewMachine(
		deep.WithClusterNodes(4),
		deep.WithBoosterNodes(8),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Place the 8 ranks on booster nodes: the halo exchange travels
	// the EXTOLL torus, exactly as DEEP runs this class of code.
	env := m.NewEnv()
	env.Ranks = 8
	env.PlaceOnBooster = true

	res, err := deep.Run(context.Background(), env, deep.SpMV{NX: 64, NY: 64, Iters: 20})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	msgs, _ := res.Metric("messages")
	bytes, _ := res.Metric("sent_bytes")
	fmt.Printf("halo traffic: %.0f messages, %.0f bytes total (%.0f B per message)\n",
		msgs, bytes, bytes/msgs)
	fmt.Println("communication pattern: nearest-neighbour only — the class the paper")
	fmt.Println("calls 'well suited' for torus machines like the Booster")
}
