// SpMV: the paper's "highly scalable" application class — a sparse
// matrix-vector iteration with nearest-neighbour halo exchange —
// running as real Global-MPI ranks over the modelled DEEP booster.
// The example verifies the distributed result against the sequential
// reference and reports the communication statistics that make the
// workload booster-friendly (regular, small, neighbour-only traffic).
//
//	go run ./examples/spmv
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/apps"
	"repro/internal/cbp"
	"repro/internal/mpi"
)

func main() {
	const nx, ny, iters, ranks = 64, 64, 20, 8

	s := &apps.SpMV{NX: nx, NY: ny, Iters: iters}
	want := s.RunSequential()

	// Place the ranks on booster nodes of a DEEP machine so the
	// virtual clocks reflect EXTOLL costs.
	tr := cbp.NewDeepTransport(4, ranks)
	world := mpi.NewWorld(tr, mpi.WithPlacement(func(ep int) int {
		return tr.BoosterNode(ep % ranks)
	}))

	results := make([][]float64, ranks)
	statsPerRank := make([]mpi.Stats, ranks)
	makespan, err := world.Run(ranks, func(c *mpi.Comm) error {
		out, err := s.Run(c)
		if err != nil {
			return err
		}
		results[c.Rank()] = out
		statsPerRank[c.Rank()] = c.Stats()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	var got []float64
	for _, r := range results {
		got = append(got, r...)
	}
	maxDiff := 0.0
	for i := range want {
		maxDiff = math.Max(maxDiff, math.Abs(got[i]-want[i]))
	}

	fmt.Printf("distributed SpMV: %dx%d grid, %d iterations, %d booster ranks\n",
		nx, ny, iters, ranks)
	fmt.Printf("  modelled time on EXTOLL torus: %v\n", makespan)
	var msgs, bytes uint64
	for _, st := range statsPerRank {
		msgs += st.SentMsgs
		bytes += st.SentBytes
	}
	fmt.Printf("  halo traffic: %d messages, %d bytes total (%d B per message)\n",
		msgs, bytes, bytes/msgs)
	fmt.Printf("  max |x - xref| = %.3e => %s\n", maxDiff, verdict(maxDiff < 1e-9))
	fmt.Println("  communication pattern: nearest-neighbour only — the class the paper")
	fmt.Println("  calls 'well suited' for torus machines like the Booster")
}

func verdict(ok bool) string {
	if ok {
		return "VERIFIED"
	}
	return "FAILED"
}
